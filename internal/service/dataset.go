package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evorec/internal/core"
	"evorec/internal/delta"
	"evorec/internal/feed"
	"evorec/internal/obs"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
	"evorec/internal/store"
)

// Dataset is the thread-safe facade over one named dataset's engine. The
// zero value is not usable; Service.Open/Create/Add construct datasets.
//
// Locking: mu guards the engine, the backing store handle and the version
// chain. Requests against an already-built pair proceed under RLock (the
// engine only reads its caches then — see core.Engine's contract); pair
// builds, commits and cache resizing take the write lock, with the
// per-pair flightGroup collapsing concurrent builds of one pair into a
// single engine call.
type Dataset struct {
	name string
	dir  string

	mu      sync.RWMutex
	eng     *core.Engine
	sds     *store.Dataset // nil for in-memory datasets
	flights flightGroup

	// feed is the dataset's subscription subsystem. It carries its own
	// lock: Subscribe/Unsubscribe/Poll never touch mu, and the commit path
	// calls FanOut while holding mu's write lock (the feed lock nests
	// strictly inside mu, never the reverse, so the order is acyclic).
	feed *feed.Feed

	// committer coalesces concurrent Commit calls into store batches (one
	// WAL fsync per batch). Its lock nests outside mu: enqueue/drain take
	// committer.mu only, commitBatch takes mu only.
	committer committer

	// metrics is the dataset's service-level instrument set; nil (no
	// registry configured) disables all recording.
	metrics *metrics

	// logger receives fan-out outcome lines attributed to the originating
	// commit request (nil = silent).
	logger *slog.Logger

	// health tracks readiness blockers for the owning service's /readyz
	// (nil for datasets built outside a Service).
	health *readyState

	// state is the write-path state machine (healthy/degraded/healing; see
	// degraded.go). Reads never consult it; commits shed while != healthy.
	state atomic.Int32
	// probeStop/probeDone bound the supervised heal probe's lifetime (both
	// nil while no probe runs; guarded by mu).
	probeStop chan struct{}
	probeDone chan struct{}
	// healMin/healMax parameterize the probe's jittered exponential
	// backoff.
	healMin, healMax time.Duration
	// tracer mints root spans for heal probes (nil = untraced).
	tracer *obs.Tracer
	// buildGate is the service-wide cold-build concurrency gate (nil =
	// unbounded).
	buildGate chan struct{}
}

// newDataset wires a dataset facade. sds is nil for in-memory datasets; vs,
// when non-nil, seeds the engine with an existing chain.
func newDataset(name, dir string, sds *store.Dataset, vs *rdf.VersionStore, cfg Config, health *readyState, gate chan struct{}) (*Dataset, error) {
	eng := core.New(core.Config{Registry: cfg.Registry, Agent: cfg.Agent, Clock: cfg.Clock})
	if vs != nil {
		if err := eng.IngestAll(vs); err != nil {
			return nil, err
		}
	}
	// Only disk-backed datasets persist their feeds. An in-memory dataset's
	// version chain dies with the process, so a persisted fan-out ledger
	// would outlive the data it indexes: a restart could then recommit
	// fresh content under recycled version IDs and the stale ledger would
	// silently skip its fan-out.
	feedDir := ""
	if cfg.FeedDir != "" && sds != nil {
		if !store.ValidSegmentFileName(name) {
			return nil, fmt.Errorf("service: dataset name %q cannot name a feed directory", name)
		}
		feedDir = filepath.Join(cfg.FeedDir, name)
	}
	m := newMetrics(cfg.Metrics)
	// The span source is installed only when a tracer is configured; the
	// interfaces are assigned a concrete value (obs.ChildSpanner) rather
	// than a converted nil, so the store/feed nil checks keep working.
	var feedSpans feed.Spanner
	if cfg.Tracer != nil {
		feedSpans = obs.ChildSpanner{}
	}
	fd, err := feed.Open(feed.Config{
		Dir:       feedDir,
		FS:        cfg.fs(),
		Workers:   cfg.FeedWorkers,
		Threshold: cfg.FeedThreshold,
		K:         cfg.FeedK,
		Telemetry: m.feedTelemetry(),
		Spans:     feedSpans,
	})
	if err != nil {
		return nil, err
	}
	if sds != nil {
		// The sink lands before the dataset serves traffic (open-time WAL
		// replay already happened inside store.OpenFS and is not counted).
		sds.SetTelemetry(m.storeTelemetry())
		if cfg.Tracer != nil {
			sds.SetSpanner(obs.ChildSpanner{})
		}
	}
	d := &Dataset{name: name, dir: dir, eng: eng, sds: sds, feed: fd,
		metrics: m, logger: cfg.Logger, health: health,
		tracer: cfg.Tracer, buildGate: gate}
	d.committer.max = cfg.CommitQueue
	if d.committer.max <= 0 {
		d.committer.max = DefaultCommitQueue
	}
	d.healMin = cfg.HealBackoff
	if d.healMin <= 0 {
		d.healMin = DefaultHealBackoff
	}
	d.healMax = cfg.HealBackoffMax
	if d.healMax < d.healMin {
		d.healMax = DefaultHealBackoffMax
	}
	if d.healMax < d.healMin {
		d.healMax = d.healMin
	}
	d.committer.cond = sync.NewCond(&d.committer.mu)
	health.addDataset()
	return d, nil
}

// Name returns the dataset's registry name.
func (d *Dataset) Name() string { return d.name }

// Backed reports whether the dataset persists to a binary store directory.
func (d *Dataset) Backed() bool { return d.sds != nil }

// Dir returns the backing store directory ("" for in-memory datasets).
func (d *Dataset) Dir() string { return d.dir }

// Versions returns the dataset's version IDs in evolution order.
func (d *Dataset) Versions() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.sds != nil {
		return d.sds.IDs()
	}
	return d.eng.Versions().IDs()
}

// hasVersionLocked reports version existence without materializing; callers
// hold either lock mode.
func (d *Dataset) hasVersionLocked(id string) bool {
	if _, ok := d.eng.Versions().Get(id); ok {
		return true
	}
	return d.sds != nil && d.sds.Has(id)
}

// ensureVersionLocked makes the version visible to the engine, paging it in
// from the backing store on first use. Ingested versions stay resident (the
// engine's pair caches reference their graphs), so the store LRU bounds
// reconstruction cost while serving memory grows with the distinct versions
// actually requested. Callers hold the write lock. When ctx carries a
// sampled trace, a cold page-in surfaces as a "store.materialize" span.
func (d *Dataset) ensureVersionLocked(ctx context.Context, id string) error {
	if _, ok := d.eng.Versions().Get(id); ok {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d.sds == nil || !d.sds.Has(id) {
		return fmt.Errorf("%w: %q in dataset %q", ErrUnknownVersion, id, d.name)
	}
	g, err := d.sds.GraphCtx(ctx, id)
	if err != nil {
		return err
	}
	return d.eng.Ingest(&rdf.Version{ID: id, Graph: g})
}

func pairKey(olderID, newerID string) string { return olderID + "\x00" + newerID }

// ensureItems guarantees the pair's context and items are cached, electing
// one builder per pair among concurrent requesters. On return (nil error)
// the pair was cached at some instant; read paths re-check under their own
// RLock and retry, so a concurrent invalidation costs a rebuild, never a
// race.
// The pair-cached fast path touches no tracing state at all — a warm
// recommend keeps its pre-tracing allocation profile whether or not the
// request is sampled. Only the slow path (a build, or a wait on someone
// else's build) opens spans: "service.pair_build" on the singleflight
// leader, "service.pair_wait" on followers.
func (d *Dataset) ensureItems(ctx context.Context, olderID, newerID string) error {
	d.mu.RLock()
	cached := d.eng.HasItems(olderID, newerID)
	d.mu.RUnlock()
	if cached {
		d.metrics.incPairHit()
		return nil
	}
	key := pairKey(olderID, newerID)
	for {
		fl, leader := d.flights.join(key)
		if !leader {
			_, ws := obs.StartSpan(ctx, "service.pair_wait")
			err := fl.wait()
			ws.SetAttr("older", olderID)
			ws.SetAttr("newer", newerID)
			ws.End()
			if err != nil {
				// The leader's shed propagates to every follower as its own
				// 503, so the shed counter must move once per shed request,
				// not once per shed build — clients and metrics reconcile 1:1.
				if errors.Is(err, ErrBuildBusy) {
					d.metrics.incBuildShed()
				}
				return err
			}
			d.mu.RLock()
			cached := d.eng.HasItems(olderID, newerID)
			d.mu.RUnlock()
			if cached {
				return nil
			}
			continue // invalidated between the leader's build and now
		}
		// The leader claims a cold-build slot before touching the write
		// lock: a saturated gate sheds here (503), so a pile-up of distinct
		// cold pairs cannot queue every request behind one slow build.
		if err := d.acquireBuildSlot(); err != nil {
			d.flights.leave(key, fl, err)
			return err
		}
		err := d.buildItems(ctx, olderID, newerID)
		d.releaseBuildSlot()
		d.flights.leave(key, fl, err)
		return err
	}
}

// buildItems is the singleflight leader's body: materialize both versions
// and build the pair under the write lock.
func (d *Dataset) buildItems(ctx context.Context, olderID, newerID string) error {
	ctx, bs := obs.StartSpan(ctx, "service.pair_build")
	bs.SetAttr("older", olderID)
	bs.SetAttr("newer", newerID)
	defer bs.End()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng.HasItems(olderID, newerID) {
		return nil
	}
	// A request whose deadline expired while queueing for the write lock
	// must not charge its (possibly long) materialization to a client that
	// already hung up — the next requester re-elects a leader and builds.
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.ensureVersionLocked(ctx, olderID); err != nil {
		return err
	}
	if err := d.ensureVersionLocked(ctx, newerID); err != nil {
		return err
	}
	_, err := d.eng.Items(olderID, newerID)
	if err == nil {
		d.metrics.incContextBuild()
	}
	return err
}

// withItems runs fn under RLock with the pair guaranteed cached for the
// duration of the call.
func (d *Dataset) withItems(ctx context.Context, olderID, newerID string, fn func() error) error {
	for {
		if err := d.ensureItems(ctx, olderID, newerID); err != nil {
			return err
		}
		d.mu.RLock()
		if !d.eng.HasItems(olderID, newerID) {
			d.mu.RUnlock()
			continue
		}
		err := fn()
		d.mu.RUnlock()
		return err
	}
}

// Recommend is RecommendCtx without a tracing context.
func (d *Dataset) Recommend(u *profile.Profile, req core.Request) ([]recommend.Recommendation, error) {
	return d.RecommendCtx(context.Background(), u, req)
}

// RecommendCtx produces a recommendation list for one user. The profile is
// caller-owned: concurrent requests must not share one mutable profile when
// req.MarkSeen is set (the HTTP layer builds request-scoped profiles). When
// ctx carries a sampled trace and the pair is cold, the build surfaces as a
// "service.pair_build" (or "service.pair_wait") child span; the warm path
// records nothing.
func (d *Dataset) RecommendCtx(ctx context.Context, u *profile.Profile, req core.Request) ([]recommend.Recommendation, error) {
	var sel []recommend.Recommendation
	err := d.withItems(ctx, req.OlderID, req.NewerID, func() error {
		var err error
		sel, err = d.eng.Recommend(u, req)
		return err
	})
	return sel, err
}

// RecommendPrivate is RecommendPrivateCtx without a tracing context.
func (d *Dataset) RecommendPrivate(pool []*profile.Profile, idx int, req core.Request, pol core.PrivacyPolicy) ([]recommend.Recommendation, error) {
	return d.RecommendPrivateCtx(context.Background(), pool, idx, req, pol)
}

// RecommendPrivateCtx recommends for pool member idx through the anonymized
// view of the pool (k-anonymity and/or differential privacy).
func (d *Dataset) RecommendPrivateCtx(ctx context.Context, pool []*profile.Profile, idx int, req core.Request, pol core.PrivacyPolicy) ([]recommend.Recommendation, error) {
	var sel []recommend.Recommendation
	err := d.withItems(ctx, req.OlderID, req.NewerID, func() error {
		var err error
		sel, err = d.eng.RecommendPrivate(pool, idx, req, pol)
		return err
	})
	return sel, err
}

// RecommendGroup is RecommendGroupCtx without a tracing context.
func (d *Dataset) RecommendGroup(g *profile.Group, req core.GroupRequest) ([]recommend.Recommendation, error) {
	return d.RecommendGroupCtx(context.Background(), g, req)
}

// RecommendGroupCtx produces a recommendation list for a group.
func (d *Dataset) RecommendGroupCtx(ctx context.Context, g *profile.Group, req core.GroupRequest) ([]recommend.Recommendation, error) {
	var sel []recommend.Recommendation
	err := d.withItems(ctx, req.OlderID, req.NewerID, func() error {
		var err error
		sel, err = d.eng.RecommendGroup(g, req)
		return err
	})
	return sel, err
}

// Notify is NotifyCtx without a tracing context.
func (d *Dataset) Notify(pool []*profile.Profile, olderID, newerID string, threshold float64, k int) ([]core.Notification, error) {
	return d.NotifyCtx(context.Background(), pool, olderID, newerID, threshold, k)
}

// NotifyCtx scans the pool after a version pair and emits per-user
// notifications whose relatedness crosses the threshold.
func (d *Dataset) NotifyCtx(ctx context.Context, pool []*profile.Profile, olderID, newerID string, threshold float64, k int) ([]core.Notification, error) {
	var out []core.Notification
	err := d.withItems(ctx, olderID, newerID, func() error {
		var err error
		out, err = d.eng.Notify(pool, olderID, newerID, threshold, k)
		return err
	})
	return out, err
}

// DeltaStats summarizes one pair's evolution for the delta endpoint.
type DeltaStats struct {
	Older, Newer   string
	Added, Deleted int
	HighLevel      []string
}

// Delta is DeltaCtx without a tracing context.
func (d *Dataset) Delta(olderID, newerID string) (*DeltaStats, error) {
	return d.DeltaCtx(context.Background(), olderID, newerID)
}

// DeltaCtx returns the pair's low-level delta sizes and rendered high-level
// changes.
func (d *Dataset) DeltaCtx(ctx context.Context, olderID, newerID string) (*DeltaStats, error) {
	var out *DeltaStats
	err := d.withItems(ctx, olderID, newerID, func() error {
		ctx, err := d.eng.Context(olderID, newerID)
		if err != nil {
			return err
		}
		stats := &DeltaStats{
			Older: olderID, Newer: newerID,
			Added: len(ctx.Delta.Added), Deleted: len(ctx.Delta.Deleted),
		}
		for _, c := range delta.DetectHighLevel(ctx.Older.Graph, ctx.Newer.Graph) {
			stats.HighLevel = append(stats.HighLevel, c.String())
		}
		out = stats
		return nil
	})
	return out, err
}

// EntityScore is one entity's evolution-intensity value.
type EntityScore struct {
	Entity string
	Score  float64
}

// MeasureEval is one measure's evaluation on a pair: identity plus the
// top-scored entities.
type MeasureEval struct {
	ID, Name, Category string
	Top                []EntityScore
}

// Measures is MeasuresCtx without a tracing context.
func (d *Dataset) Measures(olderID, newerID string, k int) ([]MeasureEval, error) {
	return d.MeasuresCtx(context.Background(), olderID, newerID, k)
}

// MeasuresCtx returns every registered measure evaluated on the pair, with
// up to k top entities each (k <= 0 omits entities).
func (d *Dataset) MeasuresCtx(ctx context.Context, olderID, newerID string, k int) ([]MeasureEval, error) {
	var out []MeasureEval
	err := d.withItems(ctx, olderID, newerID, func() error {
		items, err := d.eng.Items(olderID, newerID)
		if err != nil {
			return err
		}
		out = make([]MeasureEval, 0, len(items))
		for _, it := range items {
			ev := MeasureEval{
				ID:       it.ID(),
				Name:     it.Measure.Name(),
				Category: it.Category().String(),
			}
			if k > 0 {
				for _, e := range it.Scores.Rank().TopK(k) {
					if e.Score == 0 {
						break
					}
					ev.Top = append(ev.Top, EntityScore{Entity: e.Term.Local(), Score: e.Score})
				}
			}
			out = append(out, ev)
		}
		return nil
	})
	return out, err
}

// CommitInfo reports what a commit did.
type CommitInfo struct {
	// ID is the committed version ID.
	ID string
	// Triples is the committed graph's size.
	Triples int
	// Kind is the persisted segment kind ("snapshot" or "delta"), or
	// "memory" for in-memory datasets.
	Kind string
	// Feed reports the commit-triggered fan-out; nil when no fan-out ran
	// (first version of a chain, no subscribers registered, or the pair
	// build failed — see FeedError).
	Feed *feed.Stats
	// FeedError records a fan-out or feed-persistence failure. The commit
	// itself is durable by the time fan-out runs, so its failure must not
	// fail the commit: in-memory delivery already happened where possible
	// and the next Flush retries persistence; the error is surfaced here
	// for the client instead of being conflated with a commit failure.
	FeedError string
	// RequestID and TraceID carry the originating request's identifiers
	// into the commit result (and from there into fan-out attribution),
	// empty when the commit arrived without them.
	RequestID string
	TraceID   string
}

// Commit parses an N-Triples body as the dataset's next version, persists
// it through the binary store's append path when the dataset is
// disk-backed, and registers it with the engine. Because commits are
// append-only — duplicate IDs are rejected, never replaced — no cached
// pair can reference the committed ID, so existing pair caches stay valid
// untouched; a future replace/repair flow would invalidate selectively via
// the engine's InvalidateVersion hook.
//
// Concurrent commits coalesce through the dataset's group committer: the
// call enqueues and blocks until its commit is durable (or failed), and
// whatever accumulated in the queue meanwhile is persisted as one store
// batch behind a single WAL fsync. When the queue is saturated the call
// fails fast with ErrCommitBusy instead of blocking — the HTTP layer maps
// that to 503 + Retry-After. Callers should hand in an in-memory reader
// (the HTTP layer buffers the network body first) so the batch's write-lock
// hold never spans a slow upload.
func (d *Dataset) Commit(id string, r io.Reader) (*CommitInfo, error) {
	return d.CommitCtx(context.Background(), id, r)
}

// CommitCtx is Commit with the originating request's context: when ctx
// carries a sampled trace, the time between enqueue and the drain
// goroutine picking the commit up is recorded as a "commit.queue_wait"
// span, and the batch work (parse, store append, WAL fsync, fan-out)
// nests under the same trace. The request and trace IDs also land in
// CommitInfo and in the fan-out's log attribution.
func (d *Dataset) CommitCtx(ctx context.Context, id string, r io.Reader) (*CommitInfo, error) {
	if id == "" {
		return nil, fmt.Errorf("service: version ID must not be empty")
	}
	// Degraded datasets shed commits at the door: the write path is known
	// broken, so queueing work behind it would only convert fast 503s into
	// slow ones. Reads never pass through here and keep serving.
	if d.degraded() {
		d.metrics.addCommitDegraded(1)
		return nil, fmt.Errorf("%w: dataset %q", ErrDegraded, d.name)
	}
	_, qs := obs.StartSpan(ctx, "commit.queue_wait")
	qs.SetAttr("version", id)
	req := &commitReq{ctx: ctx, id: id, r: r, queueSpan: qs, done: make(chan commitResult, 1)}
	if err := d.enqueue(req); err != nil {
		qs.End()
		return nil, err
	}
	res := <-req.done
	return res.info, res.err
}

// Close drains the dataset's committer, checkpoints and closes the backing
// store (making every acknowledged commit durable and truncating its WAL),
// and flushes the feed. The dataset must not be used afterwards.
func (d *Dataset) Close() error {
	d.committer.close()
	// A live heal probe must finish or stop before the store handle closes
	// underneath it; stopProbe blocks until the probe goroutine exits.
	d.stopProbe()
	var err error
	d.mu.Lock()
	if d.sds != nil {
		err = d.sds.Close()
	}
	d.mu.Unlock()
	if ferr := d.feed.Flush(); err == nil {
		err = ferr
	}
	d.health.removeDataset(d.state.Load())
	return err
}

// fanOutLocked builds the pair's items and fans them out through the
// engine's pair-cached scoring index (so the fan-out and every request that
// follows the commit score through the same compiled structures); callers
// hold the write lock. A non-nil Stats alongside an error means delivery
// happened in memory but persisting a feed file failed. ctx is the
// originating commit request's: the pair build and the feed's fan-out spans
// nest under its trace when sampled.
func (d *Dataset) fanOutLocked(ctx context.Context, olderID, newerID string) (*feed.Stats, error) {
	bctx, bs := obs.StartSpan(ctx, "service.pair_build")
	bs.SetAttr("older", olderID)
	bs.SetAttr("newer", newerID)
	if err := d.ensureVersionLocked(bctx, olderID); err != nil {
		bs.End()
		return nil, fmt.Errorf("service: feed fan-out for %s->%s: %w", olderID, newerID, err)
	}
	idx, err := d.eng.ItemIndex(olderID, newerID)
	bs.End()
	if err != nil {
		return nil, fmt.Errorf("service: feed fan-out for %s->%s: %w", olderID, newerID, err)
	}
	st, err := d.feed.FanOutIndexedCtx(ctx, olderID, newerID, idx)
	if err != nil {
		return &st, fmt.Errorf("service: feed fan-out for %s->%s: %w", olderID, newerID, err)
	}
	return &st, nil
}

// logFanOut emits one attribution line per commit-triggered fan-out,
// carrying the originating request's request/trace IDs so a delivery can be
// traced back to the commit that caused it. Failures log at Error (they are
// otherwise only visible in the commit response's FeedError field);
// successful fan-outs log at Debug.
func (d *Dataset) logFanOut(ctx context.Context, newerID string, st *feed.Stats, ferr error) {
	if d.logger == nil || st == nil {
		return
	}
	attrs := []any{
		"dataset", d.name,
		"version", newerID,
		"older", st.OlderID,
		"affected", st.Affected,
		"notified", st.Notified,
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		attrs = append(attrs, "request_id", id)
	}
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		attrs = append(attrs, "trace_id", tid)
	}
	if ferr != nil {
		d.logger.Error("feed fan-out failed", append(attrs, "error", ferr.Error())...)
		return
	}
	d.logger.Debug("feed fan-out", attrs...)
}

// tailLocked returns the current last version ID ("" for an empty chain).
func (d *Dataset) tailLocked() string {
	if d.sds != nil {
		ids := d.sds.IDs()
		if len(ids) == 0 {
			return ""
		}
		return ids[len(ids)-1]
	}
	if latest := d.eng.Versions().Latest(); latest != nil {
		return latest.ID
	}
	return ""
}

// dictLocked resolves the dictionary new versions intern into: the backing
// store's, else the latest in-memory version's, else a fresh one.
func (d *Dataset) dictLocked() *rdf.Dict {
	if d.sds != nil {
		return d.sds.Dict()
	}
	if latest := d.eng.Versions().Latest(); latest != nil {
		return latest.Graph.Dict()
	}
	return rdf.NewDict()
}

// SetCacheCap resizes the backing store's graph LRU (minimum 1). It errors
// on in-memory datasets, which hold every version materialized.
func (d *Dataset) SetCacheCap(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sds == nil {
		return fmt.Errorf("service: dataset %q is in-memory and has no store cache", d.name)
	}
	return d.sds.SetCacheCap(n)
}

// ContextBuilds returns how many measure contexts the dataset's engine
// actually constructed; under singleflight this equals the number of
// distinct pairs requested, however many clients raced.
func (d *Dataset) ContextBuilds() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.ContextBuilds()
}

// InvalidateVersion drops every cached pair involving the version (a
// repair/replace hook) and returns how many pairs were dropped. The feed's
// fan-out ledger is deliberately left intact: a pair rebuilt after
// invalidation is recognized as already delivered, so subscribers are never
// re-notified for a pair they have seen.
func (d *Dataset) InvalidateVersion(id string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng.InvalidateVersion(id)
}

// ---------------------------------------------------------------------------
// Subscriptions & feed

// Subscribe registers (or updates) a subscriber from its profile; the
// profile is cloned. It reports whether the subscriber was newly created.
func (d *Dataset) Subscribe(p *profile.Profile) (feed.SubscriberInfo, bool, error) {
	return d.feed.Subscribe(p)
}

// Unsubscribe removes a subscriber (ErrUnknownSubscriber if absent). The
// user's feed log is retained for polling.
func (d *Dataset) Unsubscribe(id string) error { return d.feed.Unsubscribe(id) }

// Subscribers lists the registered subscribers, sorted by ID.
func (d *Dataset) Subscribers() []feed.SubscriberInfo { return d.feed.Subscribers() }

// PollFeed returns up to limit of user's feed entries with cursor > after,
// plus the cursor to ack on the next poll.
func (d *Dataset) PollFeed(user string, after uint64, limit int) ([]feed.Entry, uint64, error) {
	return d.feed.Poll(user, after, limit)
}

// Feed exposes the dataset's feed subsystem (tests and benchmarks drive it
// directly; HTTP traffic goes through the wrappers above).
func (d *Dataset) Feed() *feed.Feed { return d.feed }

// Info is a dataset inspection snapshot.
type Info struct {
	// Name is the registry name.
	Name string
	// Backed reports disk backing; Dir, Policy and SnapshotEvery describe
	// it when set.
	Backed        bool
	Dir           string
	Policy        string
	SnapshotEvery int
	// Versions lists version IDs in evolution order.
	Versions []string
	// Terms is the shared dictionary's entry count.
	Terms int
	// StoreCacheCap/Hits/Misses report the store LRU (backed datasets).
	StoreCacheCap    int
	StoreCacheHits   int
	StoreCacheMisses int
	// ContextBuilds counts measure contexts actually constructed;
	// CachedPairs lists the pair keys currently cached.
	ContextBuilds int
	CachedPairs   []string
	// ProvenanceRecords counts the provenance log's entries.
	ProvenanceRecords int
	// Subscribers counts registered feed subscribers; FeedPairs counts the
	// version pairs fanned out to them.
	Subscribers int
	FeedPairs   int
}

// Info returns an inspection snapshot of the dataset.
func (d *Dataset) Info() Info {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info := Info{
		Name:              d.name,
		Backed:            d.sds != nil,
		Dir:               d.dir,
		ContextBuilds:     d.eng.ContextBuilds(),
		CachedPairs:       d.eng.CachedPairs(),
		ProvenanceRecords: d.eng.Provenance().Len(),
		Subscribers:       d.feed.Len(),
		FeedPairs:         d.feed.Pairs(),
	}
	if d.sds != nil {
		man := d.sds.Manifest()
		info.Policy = man.Policy
		info.SnapshotEvery = man.SnapshotEvery
		info.Versions = d.sds.IDs()
		info.Terms = d.sds.Dict().Len() - 1
		info.StoreCacheCap = d.sds.CacheCap()
		info.StoreCacheHits, info.StoreCacheMisses = d.sds.CacheStats()
	} else {
		info.Versions = d.eng.Versions().IDs()
		if latest := d.eng.Versions().Latest(); latest != nil {
			info.Terms = latest.Graph.Dict().Len() - 1
		}
	}
	sort.Strings(info.CachedPairs)
	return info
}
