package service_test

import (
	"fmt"
	"sync"
	"testing"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/recommend"
	"evorec/internal/service"
)

// TestRacePooledScratchAcrossEndpoints hammers every kernel-routed endpoint
// — point recommend (plain/novelty/semantic), group recommend under all
// aggregations, and notify — from concurrent goroutines sharing one cached
// pair. The scoring kernel hands out per-call scratch from a sync.Pool;
// this test (run under -race in CI) asserts that pooled buffers are never
// shared across concurrent calls and that every concurrent result is
// bit-identical to the serial reference computed up front.
func TestRacePooledScratchAcrossEndpoints(t *testing.T) {
	vs := testChain(t, 2) // v1..v3
	pool := testProfiles(t, vs, 8)
	svc := service.New(service.Config{})
	d, err := svc.Add("race", vs)
	if err != nil {
		t.Fatal(err)
	}

	req := func(strategy core.Strategy) core.Request {
		return core.Request{OlderID: "v1", NewerID: "v2", K: 3, Strategy: strategy}
	}
	groups := make([]*profile.Group, 0, len(pool)/2)
	for i := 0; i+2 <= len(pool); i += 2 {
		g, err := profile.NewGroup(fmt.Sprintf("g%d", i), pool[i:i+2])
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}

	// Serial references, computed before any concurrency.
	wantRec := make(map[string][]recommend.Recommendation)
	for _, u := range pool {
		for _, s := range []core.Strategy{core.Plain, core.NoveltyAware, core.SemanticDiverse} {
			sel, err := d.Recommend(u.Clone(), req(s))
			if err != nil {
				t.Fatal(err)
			}
			wantRec[u.ID+"/"+s.String()] = sel
		}
	}
	wantGroup := make(map[string][]recommend.Recommendation)
	for _, g := range groups {
		for _, agg := range []recommend.Aggregation{recommend.Average, recommend.LeastMisery, recommend.MostPleasure} {
			sel, err := d.RecommendGroup(g, core.GroupRequest{OlderID: "v1", NewerID: "v2", K: 3, Aggregation: agg})
			if err != nil {
				t.Fatal(err)
			}
			wantGroup[g.ID+"/"+agg.String()] = sel
		}
	}
	wantNotify, err := d.Notify(pool, "v1", "v2", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				u := pool[(w+r)%len(pool)]
				s := []core.Strategy{core.Plain, core.NoveltyAware, core.SemanticDiverse}[r%3]
				sel, err := d.Recommend(u.Clone(), req(s))
				if err != nil {
					errc <- err
					return
				}
				if !sameSel(sel, wantRec[u.ID+"/"+s.String()]) {
					errc <- fmt.Errorf("worker %d round %d: concurrent recommend diverged for %s/%s", w, r, u.ID, s)
					return
				}
				g := groups[(w+r)%len(groups)]
				agg := []recommend.Aggregation{recommend.Average, recommend.LeastMisery, recommend.MostPleasure}[r%3]
				gsel, err := d.RecommendGroup(g, core.GroupRequest{OlderID: "v1", NewerID: "v2", K: 3, Aggregation: agg})
				if err != nil {
					errc <- err
					return
				}
				if !sameSel(gsel, wantGroup[g.ID+"/"+agg.String()]) {
					errc <- fmt.Errorf("worker %d round %d: concurrent group recommend diverged for %s/%s", w, r, g.ID, agg)
					return
				}
				if r%5 == 0 {
					ns, err := d.Notify(pool, "v1", "v2", 0.05, 3)
					if err != nil {
						errc <- err
						return
					}
					if len(ns) != len(wantNotify) {
						errc <- fmt.Errorf("worker %d round %d: concurrent notify emitted %d, want %d", w, r, len(ns), len(wantNotify))
						return
					}
					for i := range ns {
						if ns[i] != wantNotify[i] {
							errc <- fmt.Errorf("worker %d round %d: notification %d diverged", w, r, i)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if builds := d.ContextBuilds(); builds != 1 {
		t.Fatalf("context builds = %d, want 1 (one cached pair)", builds)
	}
}

// sameSel compares selections exactly (scores here are plain
// floats from a healthy pool; bitwise equality is the contract).
func sameSel(a, b []recommend.Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
