// Package service is the concurrent serving layer over the processing model:
// a long-lived registry of named datasets, each wrapping one core.Engine
// behind a reader/writer lock with per-pair singleflight, so that many
// clients can ask for recommendations against an evolving knowledge base at
// once — the paper's "millions of users" scenario (ROADMAP north star) —
// while commits append new versions at runtime.
//
// The concurrency model per dataset is:
//
//   - The expensive step (building a pair's measures.Context and items) runs
//     under the dataset's write lock, and a per-pair singleflight elects one
//     goroutine to do it; every concurrent request for the same pair waits
//     for that one build instead of racing the engine caches.
//   - Once a pair is cached (core.Engine.HasItems), recommendation,
//     notification and inspection requests run concurrently under the read
//     lock: they only read the caches and append to the internally
//     synchronized provenance store.
//   - Commits (new versions) and cache-capacity changes take the write lock;
//     a commit persists through the binary store's append path when the
//     dataset is disk-backed and invalidates only the pairs that involve the
//     committed version ID.
//
// Datasets come in two flavors: disk-backed (opened from an internal/store
// directory, versions materialize lazily through the store's LRU) and
// in-memory (registered from a version store or created empty and fed
// entirely through Commit).
package service

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"evorec/internal/feed"
	"evorec/internal/measures"
	"evorec/internal/obs"
	"evorec/internal/rdf"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

// Sentinel errors the HTTP layer maps to statuses.
var (
	// ErrUnknownDataset reports a name with no registered dataset.
	ErrUnknownDataset = errors.New("service: unknown dataset")
	// ErrUnknownVersion reports a version ID absent from a dataset.
	ErrUnknownVersion = errors.New("service: unknown version")
	// ErrDuplicateVersion reports a commit reusing an existing version ID.
	ErrDuplicateVersion = errors.New("service: version already exists")
	// ErrDuplicateDataset reports a registration reusing a dataset name.
	ErrDuplicateDataset = errors.New("service: dataset already registered")
	// ErrUnknownSubscriber reports a subscriber ID with no registration and
	// no retained feed log (re-exported from the feed subsystem so HTTP
	// handlers map one sentinel set).
	ErrUnknownSubscriber = feed.ErrUnknownSubscriber
	// ErrCommitBusy reports a commit refused because the dataset's group-
	// commit queue is saturated; the HTTP layer maps it to 503 with a
	// Retry-After so clients back off instead of piling on.
	ErrCommitBusy = errors.New("service: commit queue saturated")
	// ErrDatasetClosed reports an operation against a dataset whose service
	// is shutting down.
	ErrDatasetClosed = errors.New("service: dataset closed")
	// ErrDegraded reports a commit refused because the dataset's write path
	// is failing: the dataset serves reads from its materialized versions
	// while a supervised probe retries recovery with backoff. The HTTP
	// layer maps it to 503 + Retry-After, like ErrCommitBusy.
	ErrDegraded = errors.New("service: dataset degraded, commits suspended while the write path heals")
	// ErrBuildBusy reports a read shed because the cold pair-build
	// concurrency gate is saturated; also a 503 + Retry-After. Warm pairs
	// keep serving — only requests that would trigger a new build shed.
	ErrBuildBusy = errors.New("service: cold pair-build capacity saturated")
)

// Config parameterizes a Service. The zero value is usable.
type Config struct {
	// Registry supplies the measure set every dataset's engine evaluates;
	// nil means measures.NewRegistry(). It must not be mutated once the
	// service is serving.
	Registry *measures.Registry
	// Agent names the service in provenance records; empty means "evorec".
	Agent string
	// Clock stamps provenance records; nil means time.Now.
	Clock func() time.Time
	// CacheCap overrides the store LRU capacity of disk-backed datasets
	// (minimum 1); zero keeps store.DefaultCacheCap.
	CacheCap int
	// FeedDir roots feed persistence: each disk-backed dataset's subscriber
	// registry and per-user feed logs live under FeedDir/<dataset name>.
	// Empty keeps every feed in memory. In-memory datasets always keep
	// their feeds in memory — their version chains don't survive a
	// restart, so a persisted fan-out ledger would wrongly suppress
	// delivery for recycled version IDs.
	FeedDir string
	// FeedWorkers bounds each dataset's fan-out worker pool; zero keeps
	// feed.DefaultWorkers.
	FeedWorkers int
	// FeedThreshold is the minimum relatedness notified on commit; zero
	// keeps feed.DefaultThreshold.
	FeedThreshold float64
	// FeedK caps notifications per subscriber per commit; zero keeps
	// feed.DefaultK.
	FeedK int
	// FS is the filesystem disk-backed datasets and feeds persist through;
	// nil means the real filesystem. The crash-recovery tests inject a
	// fault-injecting in-memory filesystem here.
	FS vfs.FS
	// CommitQueue bounds each dataset's group-commit queue; beyond it
	// Commit fails fast with ErrCommitBusy. Zero keeps DefaultCommitQueue.
	CommitQueue int
	// BuildConcurrency bounds concurrent cold pair builds across the whole
	// service; beyond it reads needing a build shed with ErrBuildBusy
	// instead of queueing unboundedly behind the write lock. Zero keeps
	// DefaultBuildConcurrency; negative disables the gate.
	BuildConcurrency int
	// HealBackoff is the degraded-state probe's initial retry delay; zero
	// keeps DefaultHealBackoff. Each failed probe doubles the delay (with
	// full jitter) up to HealBackoffMax.
	HealBackoff time.Duration
	// HealBackoffMax caps the probe's backoff; zero keeps
	// DefaultHealBackoffMax.
	HealBackoffMax time.Duration
	// Metrics is the observability registry every dataset reports into:
	// store WAL/checkpoint/cache series, feed fan-out series, and the
	// service's own group-commit and pair-cache series (see DESIGN.md
	// §11). Nil disables instrumentation entirely — every hook degrades
	// to a nil check.
	Metrics *obs.Registry
	// Tracer, when non-nil, threads request-scoped spans through the
	// service into the store and feed layers (see DESIGN.md §12): pair
	// builds, commit queue waits, WAL appends and fan-outs become child
	// spans of the request's trace. Nil keeps every path untraced at its
	// pre-tracing cost.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives commit-triggered fan-out outcome
	// lines carrying the originating request and trace IDs, so a feed
	// delivery can be attributed to the commit request that caused it.
	Logger *slog.Logger
}

// fs resolves the configured filesystem, defaulting to the real one.
func (c Config) fs() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS{}
}

// Service is the multi-dataset registry. All methods are safe for
// concurrent use.
type Service struct {
	cfg Config

	// ready tracks readiness blockers (WAL replays, checkpoints, shutdown
	// drains) for /readyz; datasets hold a pointer into it.
	ready readyState

	// buildGate bounds concurrent cold pair builds service-wide (nil =
	// unbounded); datasets share it because builds contend on the same
	// CPUs whatever dataset they serve.
	buildGate chan struct{}

	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// New returns an empty service.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg, datasets: make(map[string]*Dataset)}
	s.ready.bind(cfg.Metrics)
	if n := cfg.BuildConcurrency; n >= 0 {
		if n == 0 {
			n = DefaultBuildConcurrency
		}
		s.buildGate = make(chan struct{}, n)
	}
	return s
}

// register validates the name and cache capacity and installs the dataset.
func (s *Service) register(name string, build func() (*Dataset, error)) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("service: dataset name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	d, err := build()
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// Open registers a disk-backed dataset from a binary store directory.
// Versions materialize lazily on first request; commits append to the
// directory.
func (s *Service) Open(name, dir string) (*Dataset, error) {
	return s.register(name, func() (*Dataset, error) {
		// OpenFS replays whatever the WAL holds before the handle is usable;
		// /readyz reports not-ready for the duration so traffic is not routed
		// to a process still recovering.
		s.ready.begin(blockReplay)
		sds, err := store.OpenFS(s.cfg.fs(), dir)
		s.ready.end(blockReplay)
		if err != nil {
			return nil, err
		}
		if s.cfg.CacheCap != 0 {
			if err := sds.SetCacheCap(s.cfg.CacheCap); err != nil {
				return nil, err
			}
		}
		return newDataset(name, dir, sds, nil, s.cfg, &s.ready, s.buildGate)
	})
}

// Create registers an empty in-memory dataset, to be fed through Commit.
func (s *Service) Create(name string) (*Dataset, error) {
	return s.register(name, func() (*Dataset, error) {
		return newDataset(name, "", nil, nil, s.cfg, &s.ready, s.buildGate)
	})
}

// Add registers an in-memory dataset over an existing version chain.
func (s *Service) Add(name string, vs *rdf.VersionStore) (*Dataset, error) {
	return s.register(name, func() (*Dataset, error) {
		return newDataset(name, "", nil, vs, s.cfg, &s.ready, s.buildGate)
	})
}

// Get returns the named dataset.
func (s *Service) Get(name string) (*Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return d, nil
}

// Names returns the registered dataset names, sorted.
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Infos returns every dataset's Info, ordered by name.
func (s *Service) Infos() []Info {
	names := s.Names()
	out := make([]Info, 0, len(names))
	for _, name := range names {
		d, err := s.Get(name)
		if err != nil {
			continue // racing a concurrent deregistration; none exists yet
		}
		out = append(out, d.Info())
	}
	return out
}

// FlushFeeds persists every dataset's feed state (subscribers, logs,
// manifests). Graceful shutdown calls it after draining in-flight
// requests; in-memory feeds no-op.
func (s *Service) FlushFeeds() error {
	var firstErr error
	for _, name := range s.Names() {
		d, err := s.Get(name)
		if err != nil {
			continue
		}
		if err := d.feed.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("flushing feed of dataset %q: %w", name, err)
		}
	}
	return firstErr
}

// Close shuts every dataset down: commit queues drain, backing stores
// checkpoint (absorbing their WALs) and close, feeds flush. The service
// must not be used afterwards; late commits fail with ErrDatasetClosed.
func (s *Service) Close() error {
	return s.closeAll(nil)
}

// closeAll is the shared shutdown body; onClosed, when non-nil, is called
// after each dataset finishes (CloseTimeout tracks progress through it).
func (s *Service) closeAll(onClosed func(name string)) error {
	// The drain is a readiness blocker: /readyz flips to 503 the moment
	// shutdown starts, before the listener stops accepting, so rolling
	// deploys stop routing to a process that is busy flushing.
	s.ready.begin(blockDrain)
	defer s.ready.end(blockDrain)
	var firstErr error
	for _, name := range s.Names() {
		d, err := s.Get(name)
		if err != nil {
			continue
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("closing dataset %q: %w", name, err)
		}
		if onClosed != nil {
			onClosed(name)
		}
	}
	return firstErr
}

// CloseTimeout is Close bounded by a deadline. When the timeout fires
// before every dataset has drained, it returns the names still closing —
// those are force-closed in the sense that the process is about to exit
// under them; their acknowledged commits are WAL-durable regardless, and
// the next open replays them. A timeout of zero or less is an unbounded
// Close.
func (s *Service) CloseTimeout(timeout time.Duration) (abandoned []string, err error) {
	if timeout <= 0 {
		return nil, s.Close()
	}
	var mu sync.Mutex
	pending := make(map[string]bool)
	for _, name := range s.Names() {
		pending[name] = true
	}
	done := make(chan error, 1)
	go func() {
		done <- s.closeAll(func(name string) {
			mu.Lock()
			delete(pending, name)
			mu.Unlock()
		})
	}()
	select {
	case err := <-done:
		return nil, err
	case <-time.After(timeout):
		mu.Lock()
		for name := range pending {
			abandoned = append(abandoned, name)
		}
		mu.Unlock()
		sort.Strings(abandoned)
		return abandoned, fmt.Errorf("service: close timed out after %s with %d datasets still draining",
			timeout, len(abandoned))
	}
}
