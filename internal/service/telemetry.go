package service

import (
	"evorec/internal/feed"
	"evorec/internal/obs"
	"evorec/internal/store"
)

// metrics is a dataset's service-level instrument set, bound onto the
// shared registry (instrument registration is get-or-create, so every
// dataset reports into the same series). A nil *metrics — the default when
// Config.Metrics is nil — turns every recording method into a nil-check
// no-op, keeping the uninstrumented request path at its PR 6 cost:
//
//	evorec_commit_batch_size             commits coalesced per group batch
//	evorec_commit_queue_depth            commits waiting for the drain goroutine
//	evorec_commit_busy_total             ErrCommitBusy rejections (load shed)
//	evorec_commit_degraded_total         commits refused or failed while degraded
//	evorec_build_shed_total              cold pair builds shed by the concurrency gate
//	evorec_checkpoint_failures_total     checkpoint failures by trigger reason
//	evorec_dataset_degraded_total        transitions into the degraded state
//	evorec_dataset_heals_total           degraded datasets restored by the heal probe
//	evorec_context_builds_total          singleflight pair builds actually run
//	evorec_pair_cache_hits_total         requests served from a cached pair
type metrics struct {
	batchSize     *obs.Histogram
	queueDepth    *obs.Gauge
	commitBusy    *obs.Counter
	commitDegr    *obs.Counter
	buildShed     *obs.Counter
	ckptFailures  *obs.CounterVec
	degraded      *obs.Counter
	heals         *obs.Counter
	contextBuilds *obs.Counter
	pairHits      *obs.Counter
	registry      *obs.Registry
}

// newMetrics binds the service instruments on reg (nil reg -> nil, fully
// disabling instrumentation).
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		batchSize: reg.Histogram("evorec_commit_batch_size",
			"Commits coalesced into one group-commit batch (one WAL fsync each).",
			obs.SizeBuckets),
		queueDepth: reg.Gauge("evorec_commit_queue_depth",
			"Commits currently queued for the group committer."),
		commitBusy: reg.Counter("evorec_commit_busy_total",
			"Commits rejected with ErrCommitBusy because the queue was saturated (HTTP 503s)."),
		commitDegr: reg.Counter("evorec_commit_degraded_total",
			"Commits refused at enqueue or failed mid-batch because the dataset was degraded (HTTP 503s)."),
		buildShed: reg.Counter("evorec_build_shed_total",
			"Read requests shed with ErrBuildBusy because the cold pair-build gate was saturated (HTTP 503s)."),
		ckptFailures: reg.CounterVec("evorec_checkpoint_failures_total",
			"Checkpoint failures by trigger reason, counted the moment they happen.",
			"reason"),
		degraded: reg.Counter("evorec_dataset_degraded_total",
			"Dataset transitions into the degraded (read-only) state."),
		heals: reg.Counter("evorec_dataset_heals_total",
			"Degraded datasets restored to healthy by the supervised heal probe."),
		contextBuilds: reg.Counter("evorec_context_builds_total",
			"Pair contexts built by singleflight leaders (one per distinct pair, however many clients race)."),
		pairHits: reg.Counter("evorec_pair_cache_hits_total",
			"Requests answered from an already-built pair cache without any build."),
		registry: reg,
	}
}

// storeTelemetry returns the sink to install on a backing store, nil when
// uninstrumented (an interface holding a typed nil would defeat the
// store's nil check, so the conversion happens here, once).
func (m *metrics) storeTelemetry() store.Telemetry {
	if m == nil {
		return nil
	}
	return obs.NewStoreSink(m.registry)
}

// feedTelemetry returns the sink for the dataset's feed, nil when
// uninstrumented.
func (m *metrics) feedTelemetry() feed.Telemetry {
	if m == nil {
		return nil
	}
	return obs.NewFeedSink(m.registry)
}

func (m *metrics) observeBatch(n int) {
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(n))
}

func (m *metrics) setQueueDepth(n int) {
	if m == nil {
		return
	}
	m.queueDepth.Set(float64(n))
}

func (m *metrics) incCommitBusy() {
	if m == nil {
		return
	}
	m.commitBusy.Inc()
}

// addCommitDegraded counts n commits resolved with ErrDegraded (one call
// covers a whole failed batch; enqueue-time refusals count singly).
func (m *metrics) addCommitDegraded(n int) {
	if m == nil {
		return
	}
	m.commitDegr.Add(float64(n))
}

func (m *metrics) incBuildShed() {
	if m == nil {
		return
	}
	m.buildShed.Inc()
}

func (m *metrics) incCheckpointFailure(reason string) {
	if m == nil {
		return
	}
	m.ckptFailures.With(reason).Inc()
}

func (m *metrics) incDegraded() {
	if m == nil {
		return
	}
	m.degraded.Inc()
}

func (m *metrics) incHealed() {
	if m == nil {
		return
	}
	m.heals.Inc()
}

func (m *metrics) incContextBuild() {
	if m == nil {
		return
	}
	m.contextBuilds.Inc()
}

func (m *metrics) incPairHit() {
	if m == nil {
		return
	}
	m.pairHits.Inc()
}
