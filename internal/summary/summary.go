// Package summary produces schema summaries of a knowledge-base version:
// the k most relevant classes (by the §II-d relevance measure) connected
// into a navigable subgraph. It follows the summarization approach the
// paper's semantic measures come from (Troullinou et al. [15], "Ontology
// understanding without tears"): select by relevance, then link the
// selection through shortest paths in the class graph so the summary stays
// connected and readable. Examples and the curator workflow use it to show
// a user *where* in the schema the recommended measures point.
package summary

import (
	"fmt"
	"sort"

	"evorec/internal/graphx"
	"evorec/internal/rdf"
	"evorec/internal/schema"
	"evorec/internal/semantics"
)

// Summary is a relevance-selected, connected view of one version's schema.
type Summary struct {
	// Selected are the top-k classes by relevance, in rank order.
	Selected []rdf.Term
	// Linking are additional classes pulled in to connect the selection.
	Linking []rdf.Term
	// Edges are the class-graph edges among Selected ∪ Linking, as sorted
	// pairs.
	Edges [][2]rdf.Term
	// Relevance holds the relevance score of every included class.
	Relevance map[rdf.Term]float64
	// InstanceCoverage is the fraction of typed instances whose class is in
	// the summary.
	InstanceCoverage float64
}

// Size returns the number of classes in the summary.
func (s *Summary) Size() int { return len(s.Selected) + len(s.Linking) }

// Contains reports whether the class is part of the summary.
func (s *Summary) Contains(c rdf.Term) bool {
	_, ok := s.Relevance[c]
	return ok
}

// Summarize builds the k-class summary of g. It selects the k most relevant
// classes, then greedily connects separated selection components through
// shortest paths in the class graph (adding the path's interior classes as
// linking nodes). k must be at least 1; a k larger than the class count
// selects everything.
func Summarize(g *rdf.Graph, k int) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("summary: k must be >= 1, got %d", k)
	}
	sch := schema.Extract(g)
	if sch.NumClasses() == 0 {
		return nil, fmt.Errorf("summary: graph has no classes")
	}
	an := semantics.NewAnalyzer(g, sch)
	type scored struct {
		c rdf.Term
		r float64
	}
	all := make([]scored, 0, sch.NumClasses())
	for _, c := range sch.ClassTerms() {
		all = append(all, scored{c: c, r: an.Relevance(c)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].r != all[j].r {
			return all[i].r > all[j].r
		}
		return all[i].c.Compare(all[j].c) < 0
	})
	if k > len(all) {
		k = len(all)
	}

	included := make(map[rdf.Term]struct{}, k)
	sum := &Summary{Relevance: make(map[rdf.Term]float64, k)}
	for _, s := range all[:k] {
		sum.Selected = append(sum.Selected, s.c)
		included[s.c] = struct{}{}
		sum.Relevance[s.c] = s.r
	}

	// Connect the selection: walk selected classes in rank order; for each
	// class not reachable from the first one within the included set, pull
	// in the interior of one shortest path in the full class graph.
	cg := graphx.FromAdjacency(sch.ClassGraph())
	anchor := sum.Selected[0]
	for _, c := range sum.Selected[1:] {
		if reachableWithin(cg, included, anchor, c) {
			continue
		}
		path := cg.BFSPath(anchor, c)
		for _, node := range path {
			if _, ok := included[node]; !ok {
				included[node] = struct{}{}
				sum.Linking = append(sum.Linking, node)
				sum.Relevance[node] = an.Relevance(node)
			}
		}
	}
	rdf.SortTerms(sum.Linking)

	// Edges among included classes.
	adj := sch.ClassGraph()
	for a, ns := range adj {
		if _, ok := included[a]; !ok {
			continue
		}
		for _, b := range ns {
			if _, ok := included[b]; !ok {
				continue
			}
			if a.Compare(b) < 0 {
				sum.Edges = append(sum.Edges, [2]rdf.Term{a, b})
			}
		}
	}
	sort.Slice(sum.Edges, func(i, j int) bool {
		if c := sum.Edges[i][0].Compare(sum.Edges[j][0]); c != 0 {
			return c < 0
		}
		return sum.Edges[i][1].Compare(sum.Edges[j][1]) < 0
	})

	// Instance coverage.
	var total, covered int
	for _, c := range sch.ClassTerms() {
		cl, _ := sch.Class(c)
		total += cl.InstanceCount
		if _, ok := included[c]; ok {
			covered += cl.InstanceCount
		}
	}
	if total > 0 {
		sum.InstanceCoverage = float64(covered) / float64(total)
	}
	return sum, nil
}

// reachableWithin reports whether dst is reachable from src using only
// included nodes, by DFS over the class graph restricted to the set.
func reachableWithin(cg *graphx.Graph, included map[rdf.Term]struct{}, src, dst rdf.Term) bool {
	if src == dst {
		return true
	}
	seen := map[rdf.Term]struct{}{src: {}}
	stack := []rdf.Term{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range cg.Neighbors(v) {
			if _, ok := included[w]; !ok {
				continue
			}
			if w == dst {
				return true
			}
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			stack = append(stack, w)
		}
	}
	return false
}
