package summary

import (
	"fmt"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/schema"
	"evorec/internal/semantics"
	"evorec/internal/synth"
)

// hubFixture: a hub class with many instance links, a chain of quieter
// classes hanging off it, and an isolated noise class.
//
//	Hub --link--> Mid --link2--> Leaf      Noise (isolated)
func hubFixture() *rdf.Graph {
	g := rdf.NewGraph()
	hub, mid, leaf, noise := rdf.SchemaIRI("Hub"), rdf.SchemaIRI("Mid"), rdf.SchemaIRI("Leaf"), rdf.SchemaIRI("Noise")
	link, link2 := rdf.SchemaIRI("link"), rdf.SchemaIRI("link2")
	for _, c := range []rdf.Term{hub, mid, leaf, noise} {
		g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	}
	g.Add(rdf.T(link, rdf.RDFSDomain, hub))
	g.Add(rdf.T(link, rdf.RDFSRange, mid))
	g.Add(rdf.T(link2, rdf.RDFSDomain, mid))
	g.Add(rdf.T(link2, rdf.RDFSRange, leaf))
	mk := func(name string, cls rdf.Term) rdf.Term {
		x := rdf.ResourceIRI(name)
		g.Add(rdf.T(x, rdf.RDFType, cls))
		return x
	}
	m := mk("m0", mid)
	l := mk("l0", leaf)
	g.Add(rdf.T(m, link2, l))
	for i := 0; i < 8; i++ {
		h := mk(fmt.Sprintf("h%d", i), hub)
		g.Add(rdf.T(h, link, m))
	}
	mk("n0", noise)
	return g
}

func TestSummarizeSelectsMostRelevant(t *testing.T) {
	g := hubFixture()
	s, err := Summarize(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Selected) != 2 {
		t.Fatalf("selected = %v", s.Selected)
	}
	// Hub (8 instances, central) and Mid must dominate Noise.
	if s.Contains(rdf.SchemaIRI("Noise")) {
		t.Fatal("noise class must not enter a k=2 summary")
	}
	// Verify selection really is the relevance top-2.
	sch := schema.Extract(g)
	an := semantics.NewAnalyzer(g, sch)
	for _, c := range s.Selected {
		if an.Relevance(c) < an.Relevance(rdf.SchemaIRI("Noise")) {
			t.Fatalf("selected %v is less relevant than Noise", c)
		}
	}
}

func TestSummarizeConnectsSelection(t *testing.T) {
	// Force a disconnected selection: Hub and Leaf (Mid more relevant than
	// Leaf, so pick k where Leaf enters but path through Mid is needed).
	g := hubFixture()
	s, err := Summarize(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With Hub, Mid, Leaf all selected, no linking needed; but the edge set
	// must connect them.
	if len(s.Edges) < 2 {
		t.Fatalf("summary edges = %v, want the Hub-Mid-Leaf chain", s.Edges)
	}
	// Edges only among included classes.
	for _, e := range s.Edges {
		if !s.Contains(e[0]) || !s.Contains(e[1]) {
			t.Fatalf("edge %v leaves the summary", e)
		}
	}
}

func TestSummarizeAddsLinkingNodes(t *testing.T) {
	// Build two hubs joined by a low-relevance bridge class; k=2 must pull
	// the bridge in as a linking node.
	g := rdf.NewGraph()
	a, bridge, b := rdf.SchemaIRI("A"), rdf.SchemaIRI("Bridge"), rdf.SchemaIRI("B")
	pa, pb := rdf.SchemaIRI("pa"), rdf.SchemaIRI("pb")
	g.Add(rdf.T(pa, rdf.RDFSDomain, a))
	g.Add(rdf.T(pa, rdf.RDFSRange, bridge))
	g.Add(rdf.T(pb, rdf.RDFSDomain, bridge))
	g.Add(rdf.T(pb, rdf.RDFSRange, b))
	mk := func(name string, cls rdf.Term) rdf.Term {
		x := rdf.ResourceIRI(name)
		g.Add(rdf.T(x, rdf.RDFType, cls))
		return x
	}
	br := mk("br", bridge)
	for i := 0; i < 6; i++ {
		g.Add(rdf.T(mk(fmt.Sprintf("a%d", i), a), pa, br))
	}
	for i := 0; i < 6; i++ {
		g.Add(rdf.T(br, pb, mk(fmt.Sprintf("b%d", i), b)))
	}
	s, err := Summarize(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Selected) != 2 {
		t.Fatalf("selected = %v", s.Selected)
	}
	// If A and B were selected, Bridge must appear as linking.
	selHasBridge := false
	for _, c := range s.Selected {
		if c == bridge {
			selHasBridge = true
		}
	}
	if !selHasBridge {
		if len(s.Linking) != 1 || s.Linking[0] != bridge {
			t.Fatalf("linking = %v, want [Bridge]", s.Linking)
		}
	}
	if s.Size() != len(s.Selected)+len(s.Linking) {
		t.Fatal("Size mismatch")
	}
}

func TestSummarizeCoverageMonotone(t *testing.T) {
	vs, _, err := synth.GenerateVersions(synth.Small(), synth.EvolveConfig{Ops: 0}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := vs.At(0).Graph
	prev := -1.0
	for _, k := range []int{1, 5, 10, 25} {
		s, err := Summarize(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if s.InstanceCoverage < prev-1e-9 {
			t.Fatalf("coverage must not shrink with k: %g after %g", s.InstanceCoverage, prev)
		}
		prev = s.InstanceCoverage
	}
	// Full summary covers everything.
	full, err := Summarize(g, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if full.InstanceCoverage < 1-1e-9 {
		t.Fatalf("full summary coverage = %g, want 1", full.InstanceCoverage)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(rdf.NewGraph(), 3); err == nil {
		t.Fatal("classless graph must fail")
	}
	g := hubFixture()
	if _, err := Summarize(g, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestSummarizeDeterministic(t *testing.T) {
	vs, _, err := synth.GenerateVersions(synth.Small(), synth.EvolveConfig{Ops: 0}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := vs.At(0).Graph
	a, err := Summarize(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != len(b.Selected) || len(a.Edges) != len(b.Edges) {
		t.Fatal("summaries differ in size")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("selection order must be deterministic")
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edge order must be deterministic")
		}
	}
}
