package synth

import (
	"fmt"
	"math/rand"

	"evorec/internal/rdf"
	"evorec/internal/schema"
)

// OpWeights mixes the evolution operation kinds. A weight of zero disables
// the operation; the probability of each kind is its weight over the total.
type OpWeights struct {
	AddClass         int
	DeleteClass      int
	Reparent         int
	AddProperty      int
	RetargetProperty int
	AddInstances     int
	DeleteInstances  int
	AddLinks         int
	Relabel          int
}

// DefaultOpWeights mirrors the change mix observed in open knowledge bases:
// instance-level churn dominates, schema restructuring is rare.
func DefaultOpWeights() OpWeights {
	return OpWeights{
		AddClass:         3,
		DeleteClass:      1,
		Reparent:         2,
		AddProperty:      2,
		RetargetProperty: 2,
		AddInstances:     30,
		DeleteInstances:  10,
		AddLinks:         40,
		Relabel:          4,
	}
}

func (w OpWeights) total() int {
	return w.AddClass + w.DeleteClass + w.Reparent + w.AddProperty +
		w.RetargetProperty + w.AddInstances + w.DeleteInstances + w.AddLinks + w.Relabel
}

// EvolveConfig controls one evolution step.
type EvolveConfig struct {
	// Ops is the number of change operations to apply.
	Ops int
	// Locality in [0,1] is the probability that an operation targets the
	// focus region (the focus class and its schema neighborhood) instead of
	// a uniformly random class. High locality concentrates the delta.
	Locality float64
	// Focus optionally pins the focus class; when zero a random class is
	// chosen (and reported back via the return value of Evolve).
	Focus rdf.Term
	// Weights mixes the operation kinds; zero value means DefaultOpWeights.
	Weights OpWeights
}

// Validate reports configuration errors.
func (c EvolveConfig) Validate() error {
	if c.Ops < 0 {
		return fmt.Errorf("synth: Ops must be >= 0, got %d", c.Ops)
	}
	if c.Locality < 0 || c.Locality > 1 {
		return fmt.Errorf("synth: Locality must be in [0,1], got %g", c.Locality)
	}
	return nil
}

// evolveState caches the mutable view of the graph during one Evolve run.
type evolveState struct {
	g       *rdf.Graph
	rng     *rand.Rand
	nm      *Namer
	classes []rdf.Term
	props   []rdf.Term
	byClass map[rdf.Term][]rdf.Term // class -> instances
	focus   rdf.Term
	region  []rdf.Term // focus + its neighborhood
}

// Evolve applies cfg.Ops random change operations to a clone of g and
// returns the evolved graph together with the focus class used, so callers
// (and experiments) know where the change burst was planted. The input
// graph is never mutated.
func Evolve(g *rdf.Graph, cfg EvolveConfig, nm *Namer, rng *rand.Rand) (*rdf.Graph, rdf.Term, error) {
	if err := cfg.Validate(); err != nil {
		return nil, rdf.Term{}, err
	}
	if nm == nil {
		return nil, rdf.Term{}, fmt.Errorf("synth: Evolve requires the Namer from Generate")
	}
	w := cfg.Weights
	if w.total() == 0 {
		w = DefaultOpWeights()
	}
	out := g.Clone()
	sch := schema.Extract(out)
	st := &evolveState{
		g:       out,
		rng:     rng,
		nm:      nm,
		classes: sch.ClassTerms(),
		props:   sch.PropertyTerms(),
		byClass: make(map[rdf.Term][]rdf.Term),
	}
	if len(st.classes) == 0 {
		return out, rdf.Term{}, nil
	}
	for _, c := range st.classes {
		st.byClass[c] = sch.InstancesOf(c)
	}
	st.focus = cfg.Focus
	if st.focus.IsWildcard() {
		st.focus = st.classes[rng.Intn(len(st.classes))]
	}
	st.region = append([]rdf.Term{st.focus}, sch.Neighbors(st.focus)...)

	for i := 0; i < cfg.Ops; i++ {
		target := st.pickTarget(cfg.Locality)
		st.apply(w, target)
	}
	return out, st.focus, nil
}

// pickTarget selects the class an operation is aimed at: within the focus
// region with probability Locality, uniformly otherwise.
func (st *evolveState) pickTarget(locality float64) rdf.Term {
	if len(st.region) > 0 && st.rng.Float64() < locality {
		return st.region[st.rng.Intn(len(st.region))]
	}
	return st.classes[st.rng.Intn(len(st.classes))]
}

// apply draws an operation kind from the weights and executes it against
// the target class. Operations that cannot apply (e.g. deleting instances
// of an empty class) degrade to the closest applicable effect or no-op.
func (st *evolveState) apply(w OpWeights, target rdf.Term) {
	r := st.rng.Intn(w.total())
	switch {
	case r < w.AddClass:
		st.addClass(target)
	case r < w.AddClass+w.DeleteClass:
		st.deleteClass(target)
	case r < w.AddClass+w.DeleteClass+w.Reparent:
		st.reparent(target)
	case r < w.AddClass+w.DeleteClass+w.Reparent+w.AddProperty:
		st.addProperty(target)
	case r < w.AddClass+w.DeleteClass+w.Reparent+w.AddProperty+w.RetargetProperty:
		st.retargetProperty(target)
	case r < w.AddClass+w.DeleteClass+w.Reparent+w.AddProperty+w.RetargetProperty+w.AddInstances:
		st.addInstances(target)
	case r < w.AddClass+w.DeleteClass+w.Reparent+w.AddProperty+w.RetargetProperty+w.AddInstances+w.DeleteInstances:
		st.deleteInstances(target)
	case r < w.total()-w.Relabel:
		st.addLinks(target)
	default:
		st.relabel(target)
	}
}

func (st *evolveState) addClass(parent rdf.Term) {
	c := st.nm.NextClass()
	st.g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	st.g.Add(rdf.T(c, rdf.RDFSSubClassOf, parent))
	st.g.Add(rdf.T(c, rdf.RDFSLabel, rdf.NewLiteral("class "+c.Local())))
	st.classes = append(st.classes, c)
	st.byClass[c] = nil
}

// deleteClass removes the target class's schema triples and its instances'
// typings, unless it is the focus itself or has subclasses (keeping the
// tree connected).
func (st *evolveState) deleteClass(target rdf.Term) {
	if target == st.focus {
		return
	}
	if len(st.g.Subjects(rdf.RDFSSubClassOf, target)) > 0 {
		return // not a leaf
	}
	for _, t := range st.g.Match(target, rdf.Term{}, rdf.Term{}) {
		st.g.Remove(t)
	}
	for _, t := range st.g.Match(rdf.Term{}, rdf.Term{}, target) {
		st.g.Remove(t)
	}
	for i, c := range st.classes {
		if c == target {
			st.classes = append(st.classes[:i], st.classes[i+1:]...)
			break
		}
	}
	delete(st.byClass, target)
}

func (st *evolveState) reparent(target rdf.Term) {
	if len(st.classes) < 2 {
		return
	}
	newParent := st.classes[st.rng.Intn(len(st.classes))]
	if newParent == target {
		return
	}
	for _, t := range st.g.Match(target, rdf.RDFSSubClassOf, rdf.Term{}) {
		st.g.Remove(t)
	}
	st.g.Add(rdf.T(target, rdf.RDFSSubClassOf, newParent))
}

func (st *evolveState) addProperty(domain rdf.Term) {
	p := st.nm.NextProperty()
	rng := st.classes[st.rng.Intn(len(st.classes))]
	st.g.Add(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
	st.g.Add(rdf.T(p, rdf.RDFSDomain, domain))
	st.g.Add(rdf.T(p, rdf.RDFSRange, rng))
	st.props = append(st.props, p)
}

func (st *evolveState) retargetProperty(target rdf.Term) {
	// Prefer a property connected to the target class.
	var cands []rdf.Term
	for _, p := range st.props {
		for _, d := range st.g.Objects(p, rdf.RDFSDomain) {
			if d == target {
				cands = append(cands, p)
			}
		}
	}
	if len(cands) == 0 {
		cands = st.props
	}
	if len(cands) == 0 {
		return
	}
	p := cands[st.rng.Intn(len(cands))]
	for _, t := range st.g.Match(p, rdf.RDFSRange, rdf.Term{}) {
		st.g.Remove(t)
	}
	st.g.Add(rdf.T(p, rdf.RDFSRange, st.classes[st.rng.Intn(len(st.classes))]))
}

func (st *evolveState) addInstances(target rdf.Term) {
	n := 1 + st.rng.Intn(4)
	for i := 0; i < n; i++ {
		x := st.nm.NextInstance()
		st.g.Add(rdf.T(x, rdf.RDFType, target))
		st.byClass[target] = append(st.byClass[target], x)
	}
}

func (st *evolveState) deleteInstances(target rdf.Term) {
	pool := st.byClass[target]
	if len(pool) == 0 {
		// Degrade to adding instances so the op still produces change.
		st.addInstances(target)
		return
	}
	n := 1 + st.rng.Intn(2)
	for i := 0; i < n && len(pool) > 0; i++ {
		idx := st.rng.Intn(len(pool))
		x := pool[idx]
		for _, t := range st.g.Match(x, rdf.Term{}, rdf.Term{}) {
			st.g.Remove(t)
		}
		for _, t := range st.g.Match(rdf.Term{}, rdf.Term{}, x) {
			st.g.Remove(t)
		}
		pool = append(pool[:idx], pool[idx+1:]...)
	}
	st.byClass[target] = pool
}

func (st *evolveState) addLinks(target rdf.Term) {
	src := st.byClass[target]
	if len(src) == 0 || len(st.props) == 0 {
		st.addInstances(target)
		return
	}
	n := 1 + st.rng.Intn(4)
	for i := 0; i < n; i++ {
		p := st.props[st.rng.Intn(len(st.props))]
		x := src[st.rng.Intn(len(src))]
		// Target an instance of the property's range when populated.
		var pool []rdf.Term
		for _, r := range st.g.Objects(p, rdf.RDFSRange) {
			pool = append(pool, st.byClass[r]...)
		}
		if len(pool) == 0 {
			pool = src
		}
		y := pool[st.rng.Intn(len(pool))]
		if x != y {
			st.g.Add(rdf.T(x, p, y))
		}
	}
}

func (st *evolveState) relabel(target rdf.Term) {
	for _, t := range st.g.Match(target, rdf.RDFSLabel, rdf.Term{}) {
		st.g.Remove(t)
	}
	st.g.Add(rdf.T(target, rdf.RDFSLabel,
		rdf.NewLiteral(fmt.Sprintf("class %s rev%d", target.Local(), st.rng.Intn(10000)))))
}

// GenerateVersions builds an evolving dataset: an initial version generated
// from kb, then steps further versions, each evolved from the previous with
// ev. Version IDs are "v1".."v<steps+1>". It returns the store and the
// focus class of each evolution step (index i is the focus of the step that
// produced version i+2).
func GenerateVersions(kb KBConfig, ev EvolveConfig, steps int, seed int64) (*rdf.VersionStore, []rdf.Term, error) {
	rng := rand.New(rand.NewSource(seed))
	g, nm, err := Generate(kb, rng)
	if err != nil {
		return nil, nil, err
	}
	vs := rdf.NewVersionStore()
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: g}); err != nil {
		return nil, nil, err
	}
	var focuses []rdf.Term
	cur := g
	for i := 0; i < steps; i++ {
		next, focus, err := Evolve(cur, ev, nm, rng)
		if err != nil {
			return nil, nil, err
		}
		focuses = append(focuses, focus)
		if err := vs.Add(&rdf.Version{ID: fmt.Sprintf("v%d", i+2), Graph: next}); err != nil {
			return nil, nil, err
		}
		cur = next
	}
	return vs, focuses, nil
}
