package synth

import (
	"fmt"
	"math/rand"

	"evorec/internal/rdf"
)

// UniversityConfig sizes the LUBM-flavored university workload: unlike the
// random-tree generator, this one has a fixed, realistic schema (the
// classic university ontology shape used by the LUBM benchmark family), so
// experiments and examples can exercise the system on meaningful class
// names and a hand-designed topology.
type UniversityConfig struct {
	// Universities is the number of university instances.
	Universities int
	// DepartmentsPerUniversity is the department fan-out.
	DepartmentsPerUniversity int
	// ProfessorsPerDepartment and StudentsPerDepartment size the staff.
	ProfessorsPerDepartment int
	StudentsPerDepartment   int
	// CoursesPerDepartment is the courses taught in each department.
	CoursesPerDepartment int
}

// DefaultUniversity returns a mid-sized university workload (~1 university,
// a few thousand triples).
func DefaultUniversity() UniversityConfig {
	return UniversityConfig{
		Universities:             1,
		DepartmentsPerUniversity: 6,
		ProfessorsPerDepartment:  5,
		StudentsPerDepartment:    40,
		CoursesPerDepartment:     8,
	}
}

// Validate reports configuration errors.
func (c UniversityConfig) Validate() error {
	if c.Universities < 1 || c.DepartmentsPerUniversity < 1 {
		return fmt.Errorf("synth: university config needs at least 1 university and department, got %+v", c)
	}
	if c.ProfessorsPerDepartment < 0 || c.StudentsPerDepartment < 0 || c.CoursesPerDepartment < 0 {
		return fmt.Errorf("synth: negative counts in university config %+v", c)
	}
	return nil
}

// University-schema terms, exported so experiments and examples can target
// them by name.
var (
	UnivOrganization  = rdf.SchemaIRI("Organization")
	UnivUniversity    = rdf.SchemaIRI("University")
	UnivDepartment    = rdf.SchemaIRI("Department")
	UnivPerson        = rdf.SchemaIRI("Person")
	UnivProfessor     = rdf.SchemaIRI("Professor")
	UnivStudent       = rdf.SchemaIRI("Student")
	UnivCourse        = rdf.SchemaIRI("Course")
	UnivPublication   = rdf.SchemaIRI("Publication")
	UnivSubOrgOf      = rdf.SchemaIRI("subOrganizationOf")
	UnivWorksFor      = rdf.SchemaIRI("worksFor")
	UnivMemberOf      = rdf.SchemaIRI("memberOf")
	UnivTeaches       = rdf.SchemaIRI("teacherOf")
	UnivTakesCourse   = rdf.SchemaIRI("takesCourse")
	UnivAdvisor       = rdf.SchemaIRI("advisor")
	UnivPublishes     = rdf.SchemaIRI("publicationAuthor")
	UnivName          = rdf.SchemaIRI("name")
	UnivEmail         = rdf.SchemaIRI("emailAddress")
	UnivResearchTopic = rdf.SchemaIRI("researchInterest")
)

// GenerateUniversity builds a university knowledge base: the fixed schema
// (class hierarchy, properties with domains/ranges) plus instances per the
// config. Deterministic given the rng.
func GenerateUniversity(cfg UniversityConfig, rng *rand.Rand) (*rdf.Graph, *Namer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	g := rdf.NewGraph()
	// Preallocate: each department carries its staff, students and courses,
	// each contributing a handful of triples.
	depts := cfg.Universities * cfg.DepartmentsPerUniversity
	g.Grow(64 + depts*(4+5*cfg.ProfessorsPerDepartment+5*cfg.StudentsPerDepartment+3*cfg.CoursesPerDepartment))
	nm := &Namer{}

	// Schema: hierarchy.
	classes := []rdf.Term{
		UnivOrganization, UnivUniversity, UnivDepartment, UnivPerson,
		UnivProfessor, UnivStudent, UnivCourse, UnivPublication,
	}
	for _, c := range classes {
		g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
		g.Add(rdf.T(c, rdf.RDFSLabel, rdf.NewLiteral(c.Local())))
	}
	g.Add(rdf.T(UnivUniversity, rdf.RDFSSubClassOf, UnivOrganization))
	g.Add(rdf.T(UnivDepartment, rdf.RDFSSubClassOf, UnivOrganization))
	g.Add(rdf.T(UnivProfessor, rdf.RDFSSubClassOf, UnivPerson))
	g.Add(rdf.T(UnivStudent, rdf.RDFSSubClassOf, UnivPerson))

	// Schema: properties.
	declare := func(p, domain, rng_ rdf.Term) {
		g.Add(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
		g.Add(rdf.T(p, rdf.RDFSDomain, domain))
		if !rng_.IsWildcard() {
			g.Add(rdf.T(p, rdf.RDFSRange, rng_))
		}
	}
	declare(UnivSubOrgOf, UnivDepartment, UnivUniversity)
	declare(UnivWorksFor, UnivProfessor, UnivDepartment)
	declare(UnivMemberOf, UnivStudent, UnivDepartment)
	declare(UnivTeaches, UnivProfessor, UnivCourse)
	declare(UnivTakesCourse, UnivStudent, UnivCourse)
	declare(UnivAdvisor, UnivStudent, UnivProfessor)
	declare(UnivPublishes, UnivPublication, UnivProfessor)
	declare(UnivName, UnivPerson, rdf.Term{})
	declare(UnivEmail, UnivPerson, rdf.Term{})
	declare(UnivResearchTopic, UnivProfessor, rdf.Term{})

	topics := []string{"databases", "semantics", "graphs", "privacy", "ml", "systems"}

	for u := 0; u < cfg.Universities; u++ {
		univ := rdf.ResourceIRI(fmt.Sprintf("univ%d", u))
		g.Add(rdf.T(univ, rdf.RDFType, UnivUniversity))
		for d := 0; d < cfg.DepartmentsPerUniversity; d++ {
			dept := rdf.ResourceIRI(fmt.Sprintf("univ%d-dept%d", u, d))
			g.Add(rdf.T(dept, rdf.RDFType, UnivDepartment))
			g.Add(rdf.T(dept, UnivSubOrgOf, univ))

			// Courses.
			courses := make([]rdf.Term, cfg.CoursesPerDepartment)
			for c := range courses {
				courses[c] = rdf.ResourceIRI(fmt.Sprintf("univ%d-dept%d-course%d", u, d, c))
				g.Add(rdf.T(courses[c], rdf.RDFType, UnivCourse))
			}
			// Professors.
			profs := make([]rdf.Term, cfg.ProfessorsPerDepartment)
			for p := range profs {
				prof := nm.NextInstance()
				profs[p] = prof
				g.Add(rdf.T(prof, rdf.RDFType, UnivProfessor))
				g.Add(rdf.T(prof, UnivWorksFor, dept))
				g.Add(rdf.T(prof, UnivName, rdf.NewLiteral(fmt.Sprintf("prof-%s", prof.Local()))))
				g.Add(rdf.T(prof, UnivResearchTopic, rdf.NewLiteral(topics[rng.Intn(len(topics))])))
				if len(courses) > 0 {
					g.Add(rdf.T(prof, UnivTeaches, courses[rng.Intn(len(courses))]))
				}
				// Publications with the professor as author.
				for k := 0; k < 1+rng.Intn(3); k++ {
					pub := nm.NextInstance()
					g.Add(rdf.T(pub, rdf.RDFType, UnivPublication))
					g.Add(rdf.T(pub, UnivPublishes, prof))
				}
			}
			// Students.
			for s := 0; s < cfg.StudentsPerDepartment; s++ {
				st := nm.NextInstance()
				g.Add(rdf.T(st, rdf.RDFType, UnivStudent))
				g.Add(rdf.T(st, UnivMemberOf, dept))
				g.Add(rdf.T(st, UnivEmail, rdf.NewLiteral(fmt.Sprintf("%s@univ%d.edu", st.Local(), u))))
				for k := 0; k < 1+rng.Intn(3) && len(courses) > 0; k++ {
					g.Add(rdf.T(st, UnivTakesCourse, courses[rng.Intn(len(courses))]))
				}
				if len(profs) > 0 && rng.Intn(3) == 0 {
					g.Add(rdf.T(st, UnivAdvisor, profs[rng.Intn(len(profs))]))
				}
			}
		}
	}
	return g, nm, nil
}

// GenerateUniversityVersions builds an evolving university dataset: the
// initial KB plus steps evolved versions using the standard evolution
// simulator.
func GenerateUniversityVersions(cfg UniversityConfig, ev EvolveConfig, steps int, seed int64) (*rdf.VersionStore, []rdf.Term, error) {
	rng := rand.New(rand.NewSource(seed))
	g, nm, err := GenerateUniversity(cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	vs := rdf.NewVersionStore()
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: g}); err != nil {
		return nil, nil, err
	}
	var focuses []rdf.Term
	cur := g
	for i := 0; i < steps; i++ {
		next, focus, err := Evolve(cur, ev, nm, rng)
		if err != nil {
			return nil, nil, err
		}
		focuses = append(focuses, focus)
		if err := vs.Add(&rdf.Version{ID: fmt.Sprintf("v%d", i+2), Graph: next}); err != nil {
			return nil, nil, err
		}
		cur = next
	}
	return vs, focuses, nil
}
