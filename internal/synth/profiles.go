package synth

import (
	"fmt"
	"math/rand"

	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/schema"
)

// ProfileConfig shapes a synthetic user population.
type ProfileConfig struct {
	// Users is the number of profiles to generate.
	Users int
	// ExtraInterests is the number of random additional entities each user
	// is mildly interested in, beyond the focus neighborhood.
	ExtraInterests int
}

// GenerateProfiles builds Users profiles over the schema: each user picks a
// uniformly random focus class and weights it 1.0, its schema neighbors
// 0.5, and ExtraInterests random further classes 0.2. The focus class of
// each user is returned alongside (index-aligned), so experiments can plant
// ground truth about what each user should be recommended.
func GenerateProfiles(s *schema.Schema, cfg ProfileConfig, rng *rand.Rand) ([]*profile.Profile, []rdf.Term, error) {
	classes := s.ClassTerms()
	if len(classes) == 0 {
		return nil, nil, fmt.Errorf("synth: schema has no classes to build profiles over")
	}
	if cfg.Users < 0 || cfg.ExtraInterests < 0 {
		return nil, nil, fmt.Errorf("synth: negative profile config %+v", cfg)
	}
	profiles := make([]*profile.Profile, cfg.Users)
	focuses := make([]rdf.Term, cfg.Users)
	for i := range profiles {
		p := profile.New(fmt.Sprintf("user%03d", i))
		focus := classes[rng.Intn(len(classes))]
		focuses[i] = focus
		p.SetInterest(focus, 1)
		for _, n := range s.Neighbors(focus) {
			p.SetInterest(n, 0.5)
		}
		for e := 0; e < cfg.ExtraInterests; e++ {
			c := classes[rng.Intn(len(classes))]
			if p.InterestIn(c) == 0 {
				p.SetInterest(c, 0.2)
			}
		}
		profiles[i] = p
	}
	return profiles, focuses, nil
}

// GroupKind selects how a synthetic group is assembled, matching the group
// scenarios of the fairness experiments.
type GroupKind uint8

const (
	// RandomGroup samples members uniformly.
	RandomGroup GroupKind = iota
	// CoherentGroup picks a seed user and the most similar others; members
	// largely agree, so all aggregation strategies behave alike.
	CoherentGroup
	// AntagonisticGroup greedily assembles maximally dissimilar members;
	// the stress case where fairness-aware selection matters.
	AntagonisticGroup
)

// String names the group kind.
func (k GroupKind) String() string {
	switch k {
	case RandomGroup:
		return "random"
	case CoherentGroup:
		return "coherent"
	case AntagonisticGroup:
		return "antagonistic"
	default:
		return fmt.Sprintf("group_kind(%d)", uint8(k))
	}
}

// GenerateGroup assembles a group of the given size and kind from the pool.
func GenerateGroup(pool []*profile.Profile, size int, kind GroupKind, rng *rand.Rand) (*profile.Group, error) {
	if size < 1 || size > len(pool) {
		return nil, fmt.Errorf("synth: group size %d out of range for pool of %d", size, len(pool))
	}
	var members []*profile.Profile
	switch kind {
	case CoherentGroup, AntagonisticGroup:
		seed := pool[rng.Intn(len(pool))]
		members = []*profile.Profile{seed}
		chosen := map[string]bool{seed.ID: true}
		for len(members) < size {
			bestIdx := -1
			bestVal := 0.0
			for i, cand := range pool {
				if chosen[cand.ID] {
					continue
				}
				// Similarity of candidate to current members.
				sim := 0.0
				for _, m := range members {
					sim += profile.CosineVectors(cand.Interests, m.Interests)
				}
				sim /= float64(len(members))
				val := sim
				if kind == AntagonisticGroup {
					val = -sim
				}
				if bestIdx < 0 || val > bestVal || (val == bestVal && cand.ID < pool[bestIdx].ID) {
					bestIdx, bestVal = i, val
				}
			}
			members = append(members, pool[bestIdx])
			chosen[pool[bestIdx].ID] = true
		}
	default: // RandomGroup
		perm := rng.Perm(len(pool))
		for _, i := range perm[:size] {
			members = append(members, pool[i])
		}
	}
	return profile.NewGroup(fmt.Sprintf("%s-group", kind), members)
}
