package synth

import (
	"math/rand"
	"testing"

	"evorec/internal/delta"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/schema"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestKBConfigValidate(t *testing.T) {
	ok := Small()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Classes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero classes must fail")
	}
	bad = ok
	bad.ZipfS = 1.0
	if err := bad.Validate(); err == nil {
		t.Fatal("ZipfS <= 1 must fail")
	}
	bad = ok
	bad.Instances = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative instances must fail")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Small()
	g, nm, err := Generate(cfg, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if nm == nil {
		t.Fatal("Generate must return a namer")
	}
	s := schema.Extract(g)
	if s.NumClasses() != cfg.Classes {
		t.Fatalf("classes = %d, want %d", s.NumClasses(), cfg.Classes)
	}
	if s.NumProperties() != cfg.Properties+cfg.LiteralProps {
		t.Fatalf("properties = %d, want %d", s.NumProperties(), cfg.Properties+cfg.LiteralProps)
	}
	// All instances typed.
	total := 0
	for _, c := range s.ClassTerms() {
		cl, _ := s.Class(c)
		total += cl.InstanceCount
	}
	if total != cfg.Instances {
		t.Fatalf("instances = %d, want %d", total, cfg.Instances)
	}
	// Tree: every class except the first has exactly one parent.
	roots := 0
	for _, c := range s.ClassTerms() {
		cl, _ := s.Class(c)
		switch len(cl.Supers) {
		case 0:
			roots++
		case 1:
		default:
			t.Fatalf("class %v has %d parents", c, len(cl.Supers))
		}
	}
	if roots != 1 {
		t.Fatalf("tree must have exactly 1 root, got %d", roots)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(Small(), rng(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(Small(), rng(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, tr := range a.Triples() {
		if !b.Has(tr) {
			t.Fatalf("same seed graphs differ at %v", tr)
		}
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	cfg := Small()
	cfg.Instances = 2000
	g, _, err := Generate(cfg, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	s := schema.Extract(g)
	max := 0
	for _, c := range s.ClassTerms() {
		cl, _ := s.Class(c)
		if cl.InstanceCount > max {
			max = cl.InstanceCount
		}
	}
	mean := float64(cfg.Instances) / float64(cfg.Classes)
	if float64(max) < 3*mean {
		t.Fatalf("Zipf head class holds %d instances, want >> mean %.0f", max, mean)
	}
}

func TestEvolveProducesLocalizedDelta(t *testing.T) {
	g, nm, err := Generate(Small(), rng(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvolveConfig{Ops: 60, Locality: 0.95}
	next, focus, err := Evolve(g, cfg, nm, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if focus.IsWildcard() {
		t.Fatal("Evolve must report the focus class")
	}
	d := delta.Compute(g, next)
	if d.IsEmpty() {
		t.Fatal("evolution must produce changes")
	}
	// The focus region must absorb a large share of the attributed change.
	attr := delta.Attribute(d)
	sOld := schema.Extract(g)
	regionChanges := attr.Changes(focus).Total()
	for _, n := range sOld.Neighbors(focus) {
		regionChanges += attr.Changes(n).Total()
	}
	if regionChanges == 0 {
		t.Fatal("high-locality evolution must change the focus region")
	}
	// Original untouched.
	if gd := delta.Compute(g, g.Clone()); !gd.IsEmpty() {
		t.Fatal("input graph must not be mutated")
	}
}

func TestEvolveLocalityConcentratesChange(t *testing.T) {
	g, nm, err := Generate(Small(), rng(5))
	if err != nil {
		t.Fatal(err)
	}
	concentration := func(locality float64, seed int64) float64 {
		next, focus, err := Evolve(g, EvolveConfig{Ops: 80, Locality: locality}, nm, rng(seed))
		if err != nil {
			t.Fatal(err)
		}
		d := delta.Compute(g, next)
		attr := delta.Attribute(d)
		sOld := schema.Extract(g)
		region := map[rdf.Term]bool{focus: true}
		for _, n := range sOld.Neighbors(focus) {
			region[n] = true
		}
		inRegion, total := 0, 0
		for _, tm := range attr.Terms() {
			c := attr.Changes(tm).Total()
			total += c
			if region[tm] {
				inRegion += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(inRegion) / float64(total)
	}
	// Average over a few seeds to damp variance.
	high, low := 0.0, 0.0
	for s := int64(0); s < 5; s++ {
		high += concentration(0.95, 100+s)
		low += concentration(0.05, 200+s)
	}
	if high <= low {
		t.Fatalf("high locality (%.3f) must concentrate more change than low (%.3f)", high/5, low/5)
	}
}

func TestEvolveConfigValidation(t *testing.T) {
	g, nm, _ := Generate(Small(), rng(1))
	if _, _, err := Evolve(g, EvolveConfig{Ops: -1}, nm, rng(1)); err == nil {
		t.Fatal("negative ops must fail")
	}
	if _, _, err := Evolve(g, EvolveConfig{Ops: 1, Locality: 2}, nm, rng(1)); err == nil {
		t.Fatal("locality > 1 must fail")
	}
	if _, _, err := Evolve(g, EvolveConfig{Ops: 1}, nil, rng(1)); err == nil {
		t.Fatal("nil namer must fail")
	}
}

func TestEvolveZeroOpsIsIdentity(t *testing.T) {
	g, nm, _ := Generate(Small(), rng(2))
	next, _, err := Evolve(g, EvolveConfig{Ops: 0}, nm, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Compute(g, next).IsEmpty() {
		t.Fatal("zero ops must not change the graph")
	}
}

func TestGenerateVersionsChain(t *testing.T) {
	vs, focuses, err := GenerateVersions(Small(), EvolveConfig{Ops: 30, Locality: 0.8}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Len() != 4 {
		t.Fatalf("versions = %d, want 4", vs.Len())
	}
	if len(focuses) != 3 {
		t.Fatalf("focuses = %d, want 3", len(focuses))
	}
	ids := vs.IDs()
	if ids[0] != "v1" || ids[3] != "v4" {
		t.Fatalf("version IDs = %v", ids)
	}
	// Every consecutive pair differs.
	vs.Pairs(func(a, b *rdf.Version) bool {
		if delta.Compute(a.Graph, b.Graph).IsEmpty() {
			t.Fatalf("versions %s->%s identical", a.ID, b.ID)
		}
		return true
	})
}

func TestGenerateVersionsDeterministic(t *testing.T) {
	a, _, err := GenerateVersions(Small(), EvolveConfig{Ops: 20, Locality: 0.5}, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateVersions(Small(), EvolveConfig{Ops: 20, Locality: 0.5}, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ga, gb := a.At(i).Graph, b.At(i).Graph
		if ga.Len() != gb.Len() {
			t.Fatalf("version %d sizes differ", i)
		}
		for _, tr := range ga.Triples() {
			if !gb.Has(tr) {
				t.Fatalf("version %d differs at %v", i, tr)
			}
		}
	}
}

func TestGenerateProfiles(t *testing.T) {
	g, _, _ := Generate(Small(), rng(6))
	s := schema.Extract(g)
	ps, focuses, err := GenerateProfiles(s, ProfileConfig{Users: 10, ExtraInterests: 2}, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 10 || len(focuses) != 10 {
		t.Fatalf("profiles/focuses = %d/%d", len(ps), len(focuses))
	}
	for i, p := range ps {
		if p.InterestIn(focuses[i]) != 1 {
			t.Fatalf("user %d focus weight = %g, want 1", i, p.InterestIn(focuses[i]))
		}
		if len(p.Interests) == 0 {
			t.Fatalf("user %d has no interests", i)
		}
	}
	if _, _, err := GenerateProfiles(schema.Extract(rdf.NewGraph()), ProfileConfig{Users: 1}, rng(1)); err == nil {
		t.Fatal("empty schema must fail")
	}
	if _, _, err := GenerateProfiles(s, ProfileConfig{Users: -1}, rng(1)); err == nil {
		t.Fatal("negative users must fail")
	}
}

func TestGenerateGroupKinds(t *testing.T) {
	g, _, _ := Generate(Small(), rng(8))
	s := schema.Extract(g)
	pool, _, err := GenerateProfiles(s, ProfileConfig{Users: 20, ExtraInterests: 1}, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []GroupKind{RandomGroup, CoherentGroup, AntagonisticGroup} {
		grp, err := GenerateGroup(pool, 4, kind, rng(10))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if grp.Size() != 4 {
			t.Fatalf("%v: size = %d", kind, grp.Size())
		}
		seen := map[string]bool{}
		for _, m := range grp.Members {
			if seen[m.ID] {
				t.Fatalf("%v: duplicate member %s", kind, m.ID)
			}
			seen[m.ID] = true
		}
	}
	if _, err := GenerateGroup(pool, 0, RandomGroup, rng(1)); err == nil {
		t.Fatal("size 0 must fail")
	}
	if _, err := GenerateGroup(pool, 99, RandomGroup, rng(1)); err == nil {
		t.Fatal("oversized group must fail")
	}
}

func TestCoherentMoreSimilarThanAntagonistic(t *testing.T) {
	g, _, _ := Generate(Small(), rng(12))
	s := schema.Extract(g)
	pool, _, err := GenerateProfiles(s, ProfileConfig{Users: 30, ExtraInterests: 1}, rng(13))
	if err != nil {
		t.Fatal(err)
	}
	meanSim := func(kind GroupKind) float64 {
		total := 0.0
		n := 0
		for seed := int64(0); seed < 5; seed++ {
			grp, err := GenerateGroup(pool, 5, kind, rng(20+seed))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < grp.Size(); i++ {
				for j := i + 1; j < grp.Size(); j++ {
					total += profileCos(grp.Members[i], grp.Members[j])
					n++
				}
			}
		}
		return total / float64(n)
	}
	if meanSim(CoherentGroup) <= meanSim(AntagonisticGroup) {
		t.Fatalf("coherent groups must be more similar: %.3f vs %.3f",
			meanSim(CoherentGroup), meanSim(AntagonisticGroup))
	}
}

func TestGroupKindString(t *testing.T) {
	if RandomGroup.String() != "random" || CoherentGroup.String() != "coherent" ||
		AntagonisticGroup.String() != "antagonistic" {
		t.Fatal("group kind names wrong")
	}
	if GroupKind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func profileCos(a, b *profile.Profile) float64 {
	return profile.CosineVectors(a.Interests, b.Interests)
}
