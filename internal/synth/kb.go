// Package synth generates synthetic evolving knowledge bases and synthetic
// user populations. It substitutes for the DBpedia/YAGO version snapshots
// and the human curators the paper assumes (see DESIGN.md §2): the generator
// controls hierarchy shape, instance skew, change rate and change locality,
// which lets every experiment plant ground truth (which region changed, what
// each user cares about) and verify the measures and recommenders against it.
//
// All generation is deterministic given a seed.
package synth

import (
	"fmt"
	"math/rand"

	"evorec/internal/rdf"
)

// KBConfig shapes one generated knowledge-base version.
type KBConfig struct {
	// Classes is the number of classes in the subsumption tree.
	Classes int
	// Properties is the number of object (class-to-class) properties.
	Properties int
	// LiteralProps is the number of literal-valued properties.
	LiteralProps int
	// Instances is the number of typed instances.
	Instances int
	// ZipfS is the skew of the instance-to-class assignment (> 1; larger
	// means a heavier head: few classes hold most instances).
	ZipfS float64
	// LinksPerInstance is the expected number of outgoing object links per
	// instance.
	LinksPerInstance int
}

// Validate reports configuration errors.
func (c KBConfig) Validate() error {
	if c.Classes < 1 {
		return fmt.Errorf("synth: Classes must be >= 1, got %d", c.Classes)
	}
	if c.Properties < 0 || c.LiteralProps < 0 || c.Instances < 0 || c.LinksPerInstance < 0 {
		return fmt.Errorf("synth: negative counts in config %+v", c)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("synth: ZipfS must be > 1, got %g", c.ZipfS)
	}
	return nil
}

// Small returns a config suitable for unit tests: a few dozen classes,
// hundreds of triples.
func Small() KBConfig {
	return KBConfig{
		Classes:          25,
		Properties:       20,
		LiteralProps:     5,
		Instances:        200,
		ZipfS:            1.4,
		LinksPerInstance: 2,
	}
}

// DBpediaLike returns a config that mimics the shape of the DBpedia
// ontology snapshots the paper's companion study [16] analyzed: a few
// hundred classes, comparable property count, heavily skewed instance
// distribution.
func DBpediaLike() KBConfig {
	return KBConfig{
		Classes:          150,
		Properties:       120,
		LiteralProps:     40,
		Instances:        4000,
		ZipfS:            1.3,
		LinksPerInstance: 3,
	}
}

// Namer mints unique entity names across an evolution run, so entities
// created in later versions never collide with deleted ones.
type Namer struct {
	class, prop, lit, inst int
}

// NextClass mints a fresh class IRI.
func (n *Namer) NextClass() rdf.Term {
	n.class++
	return rdf.SchemaIRI(fmt.Sprintf("C%04d", n.class))
}

// NextProperty mints a fresh object property IRI.
func (n *Namer) NextProperty() rdf.Term {
	n.prop++
	return rdf.SchemaIRI(fmt.Sprintf("p%04d", n.prop))
}

// NextLiteralProp mints a fresh literal property IRI.
func (n *Namer) NextLiteralProp() rdf.Term {
	n.lit++
	return rdf.SchemaIRI(fmt.Sprintf("lit%03d", n.lit))
}

// NextInstance mints a fresh instance IRI.
func (n *Namer) NextInstance() rdf.Term {
	n.inst++
	return rdf.ResourceIRI(fmt.Sprintf("i%06d", n.inst))
}

// Generate builds one knowledge-base version: a random subsumption tree of
// classes, object properties with random domains/ranges, literal properties,
// and Zipf-skewed typed instances linked through the object properties. It
// returns the graph and the Namer to thread into Evolve.
func Generate(cfg KBConfig, rng *rand.Rand) (*rdf.Graph, *Namer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	g := rdf.NewGraph()
	// Preallocate: ~3 triples per class, 3 per property, 2 per literal
	// property, and type + literal + links per instance.
	g.Grow(3*cfg.Classes + 3*cfg.Properties + 2*cfg.LiteralProps +
		cfg.Instances*(2+cfg.LinksPerInstance))
	nm := &Namer{}

	// Class tree: each new class attaches below a uniformly random earlier
	// class, yielding a random recursive tree (realistic depth ~ log n).
	classes := make([]rdf.Term, cfg.Classes)
	for i := range classes {
		c := nm.NextClass()
		classes[i] = c
		g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
		g.Add(rdf.T(c, rdf.RDFSLabel, rdf.NewLiteral("class "+c.Local())))
		if i > 0 {
			parent := classes[rng.Intn(i)]
			g.Add(rdf.T(c, rdf.RDFSSubClassOf, parent))
		}
	}

	// Object properties with random domain/range.
	props := make([]rdf.Term, cfg.Properties)
	for i := range props {
		p := nm.NextProperty()
		props[i] = p
		g.Add(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
		g.Add(rdf.T(p, rdf.RDFSDomain, classes[rng.Intn(len(classes))]))
		g.Add(rdf.T(p, rdf.RDFSRange, classes[rng.Intn(len(classes))]))
	}
	// Literal properties with random domain.
	litProps := make([]rdf.Term, cfg.LiteralProps)
	for i := range litProps {
		p := nm.NextLiteralProp()
		litProps[i] = p
		g.Add(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
		g.Add(rdf.T(p, rdf.RDFSDomain, classes[rng.Intn(len(classes))]))
	}

	// Instances: Zipf-skewed class assignment.
	if cfg.Instances > 0 {
		zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(classes)-1))
		if zipf == nil {
			return nil, nil, fmt.Errorf("synth: invalid zipf parameters (s=%g)", cfg.ZipfS)
		}
		byClass := make(map[rdf.Term][]rdf.Term, len(classes))
		instClass := make(map[rdf.Term]rdf.Term, cfg.Instances)
		instances := make([]rdf.Term, cfg.Instances)
		for i := range instances {
			x := nm.NextInstance()
			c := classes[int(zipf.Uint64())]
			instances[i] = x
			instClass[x] = c
			byClass[c] = append(byClass[c], x)
			g.Add(rdf.T(x, rdf.RDFType, c))
			if len(litProps) > 0 && rng.Intn(2) == 0 {
				lp := litProps[rng.Intn(len(litProps))]
				g.Add(rdf.T(x, lp, rdf.NewLiteral(fmt.Sprintf("v%d", rng.Intn(1000)))))
			}
		}
		// Links: each instance attempts LinksPerInstance links through a
		// random property, targeting an instance of the property's range
		// class (falling back to any instance when the range is unpopulated).
		if len(props) > 0 {
			rangeOf := make(map[rdf.Term]rdf.Term, len(props))
			for _, p := range props {
				rs := g.Objects(p, rdf.RDFSRange)
				if len(rs) > 0 {
					rangeOf[p] = rs[0]
				}
			}
			for _, x := range instances {
				for l := 0; l < cfg.LinksPerInstance; l++ {
					p := props[rng.Intn(len(props))]
					pool := byClass[rangeOf[p]]
					if len(pool) == 0 {
						pool = instances
					}
					y := pool[rng.Intn(len(pool))]
					if y != x {
						g.Add(rdf.T(x, p, y))
					}
				}
			}
		}
	}
	return g, nm, nil
}
