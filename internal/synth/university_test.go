package synth

import (
	"testing"

	"evorec/internal/delta"
	"evorec/internal/schema"
)

func TestGenerateUniversityShape(t *testing.T) {
	cfg := DefaultUniversity()
	g, nm, err := GenerateUniversity(cfg, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if nm == nil {
		t.Fatal("namer must be returned")
	}
	s := schema.Extract(g)
	// The fixed schema: 8 classes.
	if s.NumClasses() != 8 {
		t.Fatalf("classes = %d, want 8: %v", s.NumClasses(), s.ClassTerms())
	}
	// Hierarchy intact.
	prof, ok := s.Class(UnivProfessor)
	if !ok || len(prof.Supers) != 1 || prof.Supers[0] != UnivPerson {
		t.Fatalf("Professor hierarchy wrong: %+v", prof)
	}
	// Instance counts match the config.
	dept, _ := s.Class(UnivDepartment)
	if dept.InstanceCount != cfg.Universities*cfg.DepartmentsPerUniversity {
		t.Fatalf("departments = %d", dept.InstanceCount)
	}
	stud, _ := s.Class(UnivStudent)
	wantStudents := cfg.Universities * cfg.DepartmentsPerUniversity * cfg.StudentsPerDepartment
	if stud.InstanceCount != wantStudents {
		t.Fatalf("students = %d, want %d", stud.InstanceCount, wantStudents)
	}
	// Properties declared with domains.
	wf, ok := s.Property(UnivWorksFor)
	if !ok || len(wf.Domains) != 1 || wf.Domains[0] != UnivProfessor {
		t.Fatalf("worksFor property wrong: %+v", wf)
	}
	if wf.UsageCount != cfg.Universities*cfg.DepartmentsPerUniversity*cfg.ProfessorsPerDepartment {
		t.Fatalf("worksFor usage = %d", wf.UsageCount)
	}
}

func TestGenerateUniversityDeterministic(t *testing.T) {
	a, _, err := GenerateUniversity(DefaultUniversity(), rng(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateUniversity(DefaultUniversity(), rng(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, tr := range a.Triples() {
		if !b.Has(tr) {
			t.Fatalf("graphs differ at %v", tr)
		}
	}
}

func TestGenerateUniversityValidation(t *testing.T) {
	bad := DefaultUniversity()
	bad.Universities = 0
	if _, _, err := GenerateUniversity(bad, rng(1)); err == nil {
		t.Fatal("zero universities must fail")
	}
	bad = DefaultUniversity()
	bad.StudentsPerDepartment = -1
	if _, _, err := GenerateUniversity(bad, rng(1)); err == nil {
		t.Fatal("negative students must fail")
	}
}

func TestGenerateUniversityVersions(t *testing.T) {
	vs, focuses, err := GenerateUniversityVersions(DefaultUniversity(),
		EvolveConfig{Ops: 40, Locality: 0.8}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Len() != 3 || len(focuses) != 2 {
		t.Fatalf("versions/focuses = %d/%d", vs.Len(), len(focuses))
	}
	d := delta.Compute(vs.At(0).Graph, vs.At(1).Graph)
	if d.IsEmpty() {
		t.Fatal("university evolution must produce changes")
	}
}
