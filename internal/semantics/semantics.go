// Package semantics implements the paper's semantic importance measures
// (§II-d): relative cardinality of property edges, in/out-centrality of
// classes, and relevance, which extends centrality over the class
// neighborhood with instance weighting (after Troullinou et al. [15]).
//
// All quantities are computed from instance-level data: the generator (or a
// real dataset) types resources with rdf:type and links them with data
// properties; the Analyzer aggregates these links into class-pair connection
// statistics in a single pass.
package semantics

import (
	"math"
	"sort"

	"evorec/internal/rdf"
	"evorec/internal/schema"
)

// EdgeKey identifies a class-level property edge: property P connecting
// instances of class From to instances of class To.
type EdgeKey struct {
	P, From, To rdf.Term
}

// Analyzer holds the connection statistics of one version and answers
// semantic importance queries. Build one per version with NewAnalyzer; it is
// immutable afterwards and safe for concurrent reads.
type Analyzer struct {
	sch *schema.Schema
	// conn counts instance connections per (property, fromClass, toClass).
	conn map[EdgeKey]int
	// totalConn counts, per class, the total instance-link endpoints its
	// instances participate in (in either direction).
	totalConn map[rdf.Term]int
	// inEdges / outEdges list, per class, the distinct class-level property
	// edges arriving at / leaving the class.
	inEdges, outEdges map[rdf.Term][]EdgeKey
}

// NewAnalyzer scans g once and builds the connection statistics. Only
// object-link triples whose subject and object both carry rdf:type
// assertions contribute; literal-valued triples carry no class-to-class
// signal and are skipped.
func NewAnalyzer(g *rdf.Graph, sch *schema.Schema) *Analyzer {
	a := &Analyzer{
		sch:       sch,
		conn:      make(map[EdgeKey]int),
		totalConn: make(map[rdf.Term]int),
		inEdges:   make(map[rdf.Term][]EdgeKey),
		outEdges:  make(map[rdf.Term][]EdgeKey),
	}
	typeCache := make(map[rdf.Term][]rdf.Term)
	typesOf := func(x rdf.Term) []rdf.Term {
		if ts, ok := typeCache[x]; ok {
			return ts
		}
		ts := sch.TypesOf(x)
		typeCache[x] = ts
		return ts
	}
	// Sorted predicate order keeps floating-point summation order (and thus
	// every derived score) bit-for-bit reproducible across runs.
	preds := g.Predicates()
	rdf.SortTerms(preds)
	for _, p := range preds {
		if !p.IsIRI() || !sch.IsProperty(p) {
			continue
		}
		g.ForEachMatch(rdf.Term{}, p, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				return true
			}
			fromTypes := typesOf(t.S)
			toTypes := typesOf(t.O)
			if len(fromTypes) == 0 || len(toTypes) == 0 {
				return true
			}
			for _, fc := range fromTypes {
				for _, tc := range toTypes {
					k := EdgeKey{P: p, From: fc, To: tc}
					if a.conn[k] == 0 {
						a.outEdges[fc] = append(a.outEdges[fc], k)
						a.inEdges[tc] = append(a.inEdges[tc], k)
					}
					a.conn[k]++
				}
			}
			for _, fc := range fromTypes {
				a.totalConn[fc]++
			}
			for _, tc := range toTypes {
				a.totalConn[tc]++
			}
			return true
		})
	}
	// Edge-list order depends on map iteration during the scan; sort so the
	// centrality summations are deterministic.
	for _, edges := range a.inEdges {
		sortEdgeKeys(edges)
	}
	for _, edges := range a.outEdges {
		sortEdgeKeys(edges)
	}
	return a
}

func sortEdgeKeys(ks []EdgeKey) {
	sort.Slice(ks, func(i, j int) bool {
		if c := ks[i].P.Compare(ks[j].P); c != 0 {
			return c < 0
		}
		if c := ks[i].From.Compare(ks[j].From); c != 0 {
			return c < 0
		}
		return ks[i].To.Compare(ks[j].To) < 0
	})
}

// Schema returns the schema the analyzer was built over.
func (a *Analyzer) Schema() *schema.Schema { return a.sch }

// ConnectionCount returns the raw number of instance links for the edge.
func (a *Analyzer) ConnectionCount(k EdgeKey) int { return a.conn[k] }

// RelativeCardinality returns RC(e(from, to)) as defined in §II-d: the
// number of instance connections between the two classes through p, divided
// by the total number of connections the instances of the two classes have.
// It returns 0 when the classes have no connections at all.
func (a *Analyzer) RelativeCardinality(p, from, to rdf.Term) float64 {
	c := a.conn[EdgeKey{P: p, From: from, To: to}]
	if c == 0 {
		return 0
	}
	denom := a.totalConn[from] + a.totalConn[to]
	if denom == 0 {
		return 0
	}
	return float64(c) / float64(denom)
}

// InCentrality returns Cin(c): the sum of the relative cardinalities of the
// class-level property edges arriving at c, weighted by the number of
// distinct incoming properties (the "combined with the number of incoming
// properties" clause of §II-d).
func (a *Analyzer) InCentrality(c rdf.Term) float64 {
	return a.directionalCentrality(c, a.inEdges[c])
}

// OutCentrality returns Cout(c), the outgoing counterpart of InCentrality.
func (a *Analyzer) OutCentrality(c rdf.Term) float64 {
	return a.directionalCentrality(c, a.outEdges[c])
}

func (a *Analyzer) directionalCentrality(c rdf.Term, edges []EdgeKey) float64 {
	if len(edges) == 0 {
		return 0
	}
	distinctProps := make(map[rdf.Term]struct{})
	sum := 0.0
	for _, e := range edges {
		distinctProps[e.P] = struct{}{}
		sum += a.RelativeCardinality(e.P, e.From, e.To)
	}
	return sum * float64(len(distinctProps))
}

// Centrality returns the overall centrality Cin(c) + Cout(c).
func (a *Analyzer) Centrality(c rdf.Term) float64 {
	return a.InCentrality(c) + a.OutCentrality(c)
}

// Relevance extends centrality over the neighborhood (§II-d): the relevance
// of a class is its own centrality plus the mean centrality of its schema
// neighbors, scaled by log(1 + instance count) so that heavily-instantiated
// classes matter more. The exact combination follows the summarization
// approach of [15] adapted to our centrality definition; the weighting
// choices are documented in DESIGN.md.
func (a *Analyzer) Relevance(c rdf.Term) float64 {
	own := a.Centrality(c)
	neighbors := a.sch.Neighbors(c)
	nsum := 0.0
	for _, n := range neighbors {
		nsum += a.Centrality(n)
	}
	if len(neighbors) > 0 {
		own += nsum / float64(len(neighbors))
	}
	instances := 0
	if cl, ok := a.sch.Class(c); ok {
		instances = cl.InstanceCount
	}
	return own * math.Log1p(float64(instances))
}

// PropertyCentrality returns the importance of a property: the sum of the
// relative cardinalities of all class-level edges it realizes. This is the
// "extension to properties" the paper sketches at the end of §II.
func (a *Analyzer) PropertyCentrality(p rdf.Term) float64 {
	var keys []EdgeKey
	for k, c := range a.conn {
		if k.P == p && c > 0 {
			keys = append(keys, k)
		}
	}
	sortEdgeKeys(keys) // deterministic summation order
	sum := 0.0
	for _, k := range keys {
		sum += a.RelativeCardinality(k.P, k.From, k.To)
	}
	return sum
}

// AllCentralities returns the centrality of every class, keyed by term.
func (a *Analyzer) AllCentralities() map[rdf.Term]float64 {
	out := make(map[rdf.Term]float64, a.sch.NumClasses())
	for _, c := range a.sch.ClassTerms() {
		out[c] = a.Centrality(c)
	}
	return out
}

// AllRelevances returns the relevance of every class, keyed by term.
func (a *Analyzer) AllRelevances() map[rdf.Term]float64 {
	out := make(map[rdf.Term]float64, a.sch.NumClasses())
	for _, c := range a.sch.ClassTerms() {
		out[c] = a.Relevance(c)
	}
	return out
}
