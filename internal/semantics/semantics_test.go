package semantics

import (
	"fmt"
	"math"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/schema"
)

// fixture: Person --worksFor--> Org (3 links), Person --knows--> Person
// (1 link), plus a literal-valued name property (must be ignored).
func fixture() (*rdf.Graph, *schema.Schema) {
	g := rdf.NewGraph()
	person, org := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Org")
	worksFor, knows, name := rdf.SchemaIRI("worksFor"), rdf.SchemaIRI("knows"), rdf.SchemaIRI("name")
	g.Add(rdf.T(person, rdf.RDFType, rdf.RDFSClass))
	g.Add(rdf.T(org, rdf.RDFType, rdf.RDFSClass))
	g.Add(rdf.T(worksFor, rdf.RDFSDomain, person))
	g.Add(rdf.T(worksFor, rdf.RDFSRange, org))
	g.Add(rdf.T(knows, rdf.RDFSDomain, person))
	g.Add(rdf.T(knows, rdf.RDFSRange, person))
	g.Add(rdf.T(name, rdf.RDFSDomain, person))

	people := make([]rdf.Term, 3)
	for i := range people {
		people[i] = rdf.ResourceIRI(fmt.Sprintf("p%d", i))
		g.Add(rdf.T(people[i], rdf.RDFType, person))
	}
	o := rdf.ResourceIRI("acme")
	g.Add(rdf.T(o, rdf.RDFType, org))
	for _, p := range people {
		g.Add(rdf.T(p, worksFor, o))
	}
	g.Add(rdf.T(people[0], knows, people[1]))
	g.Add(rdf.T(people[0], name, rdf.NewLiteral("Zero")))
	return g, schema.Extract(g)
}

func TestConnectionCounts(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	person, org := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Org")
	wf, kn := rdf.SchemaIRI("worksFor"), rdf.SchemaIRI("knows")
	if got := a.ConnectionCount(EdgeKey{wf, person, org}); got != 3 {
		t.Fatalf("conn(worksFor,Person,Org) = %d, want 3", got)
	}
	if got := a.ConnectionCount(EdgeKey{kn, person, person}); got != 1 {
		t.Fatalf("conn(knows,Person,Person) = %d, want 1", got)
	}
	if got := a.ConnectionCount(EdgeKey{wf, org, person}); got != 0 {
		t.Fatalf("reverse direction must be 0, got %d", got)
	}
}

func TestRelativeCardinality(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	person, org := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Org")
	wf := rdf.SchemaIRI("worksFor")
	// Person endpoints: 3 (worksFor out) + 2 (knows both ends) = 5.
	// Org endpoints: 3 (worksFor in). Denominator = 5+3 = 8; conn = 3.
	want := 3.0 / 8.0
	if got := a.RelativeCardinality(wf, person, org); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RC = %g, want %g", got, want)
	}
	if got := a.RelativeCardinality(wf, org, person); got != 0 {
		t.Fatalf("RC reverse = %g, want 0", got)
	}
	if got := a.RelativeCardinality(rdf.SchemaIRI("nope"), person, org); got != 0 {
		t.Fatalf("RC unknown property = %g, want 0", got)
	}
}

func TestInOutCentrality(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	person, org := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Org")
	// Org has one incoming edge via one property: Cin = RC * 1 = 3/8.
	if got, want := a.InCentrality(org), 3.0/8.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cin(Org) = %g, want %g", got, want)
	}
	if got := a.OutCentrality(org); got != 0 {
		t.Fatalf("Cout(Org) = %g, want 0", got)
	}
	// Person: outgoing edges worksFor (RC=3/8... denominators differ) and
	// knows; two distinct properties.
	rcWF := a.RelativeCardinality(rdf.SchemaIRI("worksFor"), person, org)
	rcKN := a.RelativeCardinality(rdf.SchemaIRI("knows"), person, person)
	wantOut := (rcWF + rcKN) * 2
	if got := a.OutCentrality(person); math.Abs(got-wantOut) > 1e-12 {
		t.Fatalf("Cout(Person) = %g, want %g", got, wantOut)
	}
	// Person has one incoming edge (knows), one property.
	if got := a.InCentrality(person); math.Abs(got-rcKN) > 1e-12 {
		t.Fatalf("Cin(Person) = %g, want %g", got, rcKN)
	}
	if got := a.Centrality(person); math.Abs(got-(wantOut+rcKN)) > 1e-12 {
		t.Fatalf("Centrality(Person) = %g", got)
	}
}

func TestLiteralLinksIgnored(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	// name is literal-valued: it must not create any class edge.
	for k := range a.conn {
		if k.P == rdf.SchemaIRI("name") {
			t.Fatalf("literal property created edge %v", k)
		}
	}
}

func TestUntypedEndpointsIgnored(t *testing.T) {
	g := rdf.NewGraph()
	p := rdf.SchemaIRI("link")
	g.Add(rdf.T(p, rdf.RDFSDomain, rdf.SchemaIRI("C")))
	// x untyped, y untyped: no class signal.
	g.Add(rdf.T(rdf.ResourceIRI("x"), p, rdf.ResourceIRI("y")))
	s := schema.Extract(g)
	a := NewAnalyzer(g, s)
	if len(a.conn) != 0 {
		t.Fatalf("untyped endpoints must not contribute, got %v", a.conn)
	}
}

func TestMultiTypedEndpoints(t *testing.T) {
	g := rdf.NewGraph()
	c1, c2, c3 := rdf.SchemaIRI("C1"), rdf.SchemaIRI("C2"), rdf.SchemaIRI("C3")
	p := rdf.SchemaIRI("p")
	g.Add(rdf.T(p, rdf.RDFSDomain, c1))
	x, y := rdf.ResourceIRI("x"), rdf.ResourceIRI("y")
	g.Add(rdf.T(x, rdf.RDFType, c1))
	g.Add(rdf.T(x, rdf.RDFType, c2))
	g.Add(rdf.T(y, rdf.RDFType, c3))
	g.Add(rdf.T(x, p, y))
	s := schema.Extract(g)
	a := NewAnalyzer(g, s)
	// Both (c1,c3) and (c2,c3) edges must exist.
	if a.ConnectionCount(EdgeKey{p, c1, c3}) != 1 || a.ConnectionCount(EdgeKey{p, c2, c3}) != 1 {
		t.Fatalf("multi-typed subject must contribute to all type pairs: %v", a.conn)
	}
	// y participates in one link but has endpoints counted once per type.
	if a.totalConn[c3] != 1 {
		t.Fatalf("totalConn(C3) = %d, want 1", a.totalConn[c3])
	}
}

func TestRelevanceInstanceWeighting(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	person, org := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Org")
	// Person (3 instances) must outrank Org (1 instance): higher centrality
	// and higher instance weight.
	rp, ro := a.Relevance(person), a.Relevance(org)
	if rp <= ro {
		t.Fatalf("Relevance(Person)=%g must exceed Relevance(Org)=%g", rp, ro)
	}
	// A class with no instances and no links has zero relevance.
	if got := a.Relevance(rdf.SchemaIRI("Ghost")); got != 0 {
		t.Fatalf("Relevance(unknown) = %g, want 0", got)
	}
}

func TestRelevanceNeighborContribution(t *testing.T) {
	// Two classes with identical own-centrality and instances, but one has a
	// high-centrality neighbor: it must score higher.
	g := rdf.NewGraph()
	hub := rdf.SchemaIRI("Hub")
	a1, b1 := rdf.SchemaIRI("A1"), rdf.SchemaIRI("B1")
	pa, pb, ph := rdf.SchemaIRI("pa"), rdf.SchemaIRI("pb"), rdf.SchemaIRI("ph")
	// a1 -- pa --> hub ; b1 -- pb --> b2(low)
	b2 := rdf.SchemaIRI("B2")
	g.Add(rdf.T(pa, rdf.RDFSDomain, a1))
	g.Add(rdf.T(pa, rdf.RDFSRange, hub))
	g.Add(rdf.T(pb, rdf.RDFSDomain, b1))
	g.Add(rdf.T(pb, rdf.RDFSRange, b2))
	// Hub also richly connected elsewhere.
	hubSrc := rdf.SchemaIRI("HubSrc")
	g.Add(rdf.T(ph, rdf.RDFSDomain, hubSrc))
	g.Add(rdf.T(ph, rdf.RDFSRange, hub))

	mk := func(name string, class rdf.Term) rdf.Term {
		x := rdf.ResourceIRI(name)
		g.Add(rdf.T(x, rdf.RDFType, class))
		return x
	}
	xa, xh := mk("xa", a1), mk("xh", hub)
	xb, xb2 := mk("xb", b1), mk("xb2", b2)
	g.Add(rdf.T(xa, pa, xh))
	g.Add(rdf.T(xb, pb, xb2))
	for i := 0; i < 5; i++ {
		src := mk(fmt.Sprintf("hs%d", i), hubSrc)
		g.Add(rdf.T(src, ph, xh))
	}
	s := schema.Extract(g)
	an := NewAnalyzer(g, s)
	if an.Relevance(a1) <= an.Relevance(b1) {
		t.Fatalf("class next to hub must be more relevant: A1=%g B1=%g",
			an.Relevance(a1), an.Relevance(b1))
	}
}

func TestPropertyCentrality(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	wf, kn := rdf.SchemaIRI("worksFor"), rdf.SchemaIRI("knows")
	if a.PropertyCentrality(wf) <= a.PropertyCentrality(kn) {
		t.Fatalf("worksFor (3 links) must outrank knows (1 link): %g vs %g",
			a.PropertyCentrality(wf), a.PropertyCentrality(kn))
	}
	if got := a.PropertyCentrality(rdf.SchemaIRI("absent")); got != 0 {
		t.Fatalf("PropertyCentrality(absent) = %g, want 0", got)
	}
}

func TestAllCentralitiesAllRelevances(t *testing.T) {
	g, s := fixture()
	a := NewAnalyzer(g, s)
	cs := a.AllCentralities()
	rs := a.AllRelevances()
	if len(cs) != s.NumClasses() || len(rs) != s.NumClasses() {
		t.Fatalf("coverage: |C|=%d |R|=%d classes=%d", len(cs), len(rs), s.NumClasses())
	}
	for c, v := range cs {
		if v < 0 {
			t.Fatalf("negative centrality for %v", c)
		}
	}
	for c, v := range rs {
		if v < 0 {
			t.Fatalf("negative relevance for %v", c)
		}
	}
}
