package profile

import (
	"math"
	"testing"
	"testing/quick"

	"evorec/internal/rdf"
)

func term(s string) rdf.Term { return rdf.SchemaIRI(s) }

func TestSetInterestClampsAndDeletes(t *testing.T) {
	p := New("u1")
	p.SetInterest(term("A"), 0.8)
	if p.InterestIn(term("A")) != 0.8 {
		t.Fatalf("InterestIn = %g", p.InterestIn(term("A")))
	}
	p.SetInterest(term("A"), -1)
	if _, ok := p.Interests[term("A")]; ok {
		t.Fatal("negative weight must remove the interest")
	}
	p.SetInterest(term("B"), 0)
	if _, ok := p.Interests[term("B")]; ok {
		t.Fatal("zero weight must remove the interest")
	}
	if p.InterestIn(term("C")) != 0 {
		t.Fatal("absent interest must be 0")
	}
}

func TestTopInterests(t *testing.T) {
	p := New("u1")
	p.SetInterest(term("A"), 1)
	p.SetInterest(term("B"), 3)
	p.SetInterest(term("C"), 2)
	p.SetInterest(term("D"), 3)
	top := p.TopInterests(3)
	if len(top) != 3 {
		t.Fatalf("TopInterests(3) len = %d", len(top))
	}
	// B and D tie at 3; B sorts first.
	if top[0] != term("B") || top[1] != term("D") || top[2] != term("C") {
		t.Fatalf("TopInterests = %v", top)
	}
	if got := p.TopInterests(99); len(got) != 4 {
		t.Fatalf("TopInterests over length = %v", got)
	}
}

func TestSeenTracking(t *testing.T) {
	p := New("u1")
	if p.SeenCount("m") != 0 {
		t.Fatal("fresh profile must have zero seen counts")
	}
	p.MarkSeen("m")
	p.MarkSeen("m")
	if p.SeenCount("m") != 2 {
		t.Fatalf("SeenCount = %d, want 2", p.SeenCount("m"))
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New("u1")
	p.SetInterest(term("A"), 1)
	p.MarkSeen("m")
	c := p.Clone()
	c.SetInterest(term("A"), 9)
	c.MarkSeen("m")
	if p.InterestIn(term("A")) != 1 || p.SeenCount("m") != 1 {
		t.Fatal("mutating clone must not affect original")
	}
	if c.ID != p.ID {
		t.Fatal("clone must keep the ID")
	}
}

func TestNormalize(t *testing.T) {
	p := New("u1")
	p.SetInterest(term("A"), 3)
	p.SetInterest(term("B"), 4)
	p.Normalize()
	if math.Abs(p.Norm()-1) > 1e-12 {
		t.Fatalf("norm after Normalize = %g", p.Norm())
	}
	if math.Abs(p.InterestIn(term("A"))-0.6) > 1e-12 {
		t.Fatalf("A weight = %g, want 0.6", p.InterestIn(term("A")))
	}
	zero := New("z")
	zero.Normalize() // must not panic or NaN
	if zero.Norm() != 0 {
		t.Fatal("zero profile must stay zero")
	}
}

func TestCosine(t *testing.T) {
	p := New("u1")
	p.SetInterest(term("A"), 1)
	p.SetInterest(term("B"), 1)
	same := map[rdf.Term]float64{term("A"): 2, term("B"): 2}
	if got := p.Cosine(same); math.Abs(got-1) > 1e-12 {
		t.Fatalf("aligned cosine = %g, want 1", got)
	}
	orth := map[rdf.Term]float64{term("C"): 5}
	if got := p.Cosine(orth); got != 0 {
		t.Fatalf("orthogonal cosine = %g, want 0", got)
	}
	if got := p.Cosine(nil); got != 0 {
		t.Fatalf("nil cosine = %g, want 0", got)
	}
	if got := New("z").Cosine(same); got != 0 {
		t.Fatalf("zero-profile cosine = %g, want 0", got)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(w1, w2 [5]uint8) bool {
		a, b := map[rdf.Term]float64{}, map[rdf.Term]float64{}
		for i := 0; i < 5; i++ {
			if w1[i] > 0 {
				a[term(string(rune('A'+i)))] = float64(w1[i])
			}
			if w2[i] > 0 {
				b[term(string(rune('A'+i)))] = float64(w2[i])
			}
		}
		c := CosineVectors(a, b)
		return c >= -1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardInterests(t *testing.T) {
	a, b := New("a"), New("b")
	if got := JaccardInterests(a, b); got != 1 {
		t.Fatalf("empty Jaccard = %g, want 1", got)
	}
	a.SetInterest(term("A"), 1)
	a.SetInterest(term("B"), 1)
	b.SetInterest(term("B"), 1)
	b.SetInterest(term("C"), 1)
	if got := JaccardInterests(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %g, want 1/3", got)
	}
}

func TestCentroid(t *testing.T) {
	a, b := New("a"), New("b")
	a.SetInterest(term("A"), 1)
	b.SetInterest(term("A"), 3)
	b.SetInterest(term("B"), 2)
	c := Centroid("g", []*Profile{a, b})
	if math.Abs(c.InterestIn(term("A"))-2) > 1e-12 {
		t.Fatalf("centroid A = %g, want 2", c.InterestIn(term("A")))
	}
	if math.Abs(c.InterestIn(term("B"))-1) > 1e-12 {
		t.Fatalf("centroid B = %g, want 1", c.InterestIn(term("B")))
	}
	if c.ID != "g" {
		t.Fatal("centroid ID mismatch")
	}
	empty := Centroid("e", nil)
	if len(empty.Interests) != 0 {
		t.Fatal("empty centroid must have no interests")
	}
}

func TestNewGroup(t *testing.T) {
	if _, err := NewGroup("g", nil); err == nil {
		t.Fatal("empty group must be rejected")
	}
	g, err := NewGroup("g", []*Profile{New("a"), New("b")})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d", g.Size())
	}
}
