package profile

import (
	"fmt"
	"strconv"
	"strings"

	"evorec/internal/rdf"
)

// ParseInterests parses the interest-spec grammar shared by the CLI
// (-interests flag) and the HTTP API (interests= parameter):
// "Class=0.9,OtherClass=0.4". Bare names (no '=') get weight 1; names
// without a scheme resolve in the synthetic schema namespace, anything
// containing "://" is taken as a full IRI.
func ParseInterests(id, spec string) (*Profile, error) {
	if spec == "" {
		return nil, fmt.Errorf("interests must not be empty (e.g. C0001=1,C0002=0.5)")
	}
	p := New(id)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, found := strings.Cut(part, "=")
		w := 1.0
		if found {
			var err error
			w, err = strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight in %q: %w", part, err)
			}
		}
		term := rdf.SchemaIRI(name)
		if strings.Contains(name, "://") {
			term = rdf.NewIRI(name)
		}
		p.SetInterest(term, w)
	}
	return p, nil
}

// ParseUserSpec parses "id:Class=w,Class=w" — an interest spec prefixed
// with the user's ID, the form repeated user/member/pool parameters take.
func ParseUserSpec(spec string) (*Profile, error) {
	id, interests, found := strings.Cut(spec, ":")
	if !found || id == "" {
		return nil, fmt.Errorf("user spec %q must look like id:Class=w,Class=w", spec)
	}
	return ParseInterests(id, interests)
}
