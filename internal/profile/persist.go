package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"evorec/internal/rdf"
)

// persisted is the JSON wire form of a profile. Interests are stored as
// IRI-keyed weights; the seen history is carried along so novelty-aware
// recommendation state survives a round trip.
type persisted struct {
	ID        string             `json:"id"`
	Interests map[string]float64 `json:"interests"`
	Seen      map[string]int     `json:"seen,omitempty"`
}

// WriteJSON serializes the profile. Only IRI-termed interests are
// persisted (literals and blanks carry no cross-session identity); the
// output is deterministic (sorted keys via encoding/json map ordering).
func (p *Profile) WriteJSON(w io.Writer) error {
	out := persisted{
		ID:        p.ID,
		Interests: make(map[string]float64, len(p.Interests)),
		Seen:      make(map[string]int, len(p.seen)),
	}
	for t, v := range p.Interests {
		if t.IsIRI() {
			out.Interests[t.Value] = v
		}
	}
	for m, n := range p.seen {
		out.Seen[m] = n
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("profile: encoding %s: %w", p.ID, err)
	}
	return nil
}

// ReadJSON deserializes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var in persisted
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if in.ID == "" {
		return nil, fmt.Errorf("profile: decoded profile has no ID")
	}
	p := New(in.ID)
	for iri, w := range in.Interests {
		if w < 0 {
			return nil, fmt.Errorf("profile: negative weight %g for %s", w, iri)
		}
		p.SetInterest(rdf.NewIRI(iri), w)
	}
	for m, n := range in.Seen {
		if n < 0 {
			return nil, fmt.Errorf("profile: negative seen count for %s", m)
		}
		p.seen[m] = n
	}
	return p, nil
}

// SortedInterestIRIs lists the persisted interest IRIs in sorted order,
// mainly for reports and tests.
func (p *Profile) SortedInterestIRIs() []string {
	out := make([]string, 0, len(p.Interests))
	for t := range p.Interests {
		if t.IsIRI() {
			out = append(out, t.Value)
		}
	}
	sort.Strings(out)
	return out
}
