package profile

import (
	"math"
	"slices"
	"sort"

	"evorec/internal/rdf"
)

// FlatEntry is one dimension of a flat sparse vector: a dictionary-encoded
// term and its weight.
type FlatEntry struct {
	// ID is the term's dictionary ID.
	ID rdf.TermID
	// W is the term's weight.
	W float64
}

// Flat is a sparse term vector compiled down to IDs: entries sorted
// ascending by TermID plus the cached Euclidean norm. It is the form the
// scoring kernel runs on — dot products become a two-pointer merge over
// integers instead of hashing full string terms per entry, and the norm is
// paid once at compile time instead of inside every cosine.
//
// A Flat is only meaningful relative to the Dict it was compiled against.
// The norm covers every weight of the source vector, including terms the
// dictionary could not resolve (they can never match, but they still scale
// the cosine); it is computed with the same sorted summation as
// CosineVectors, so flat cosines are bit-identical to the map path.
//
// A compiled Flat is immutable by convention and safe for concurrent reads.
type Flat struct {
	// Entries holds the resolved dimensions, sorted ascending by ID.
	Entries []FlatEntry
	// Norm is the cached Euclidean norm over all source weights.
	Norm float64
}

// Compile (re)builds f from a sparse term vector against d, reusing f's
// backing storage. When intern is true unseen terms are added to d (index
// construction owns its dictionary); when false d is only read, so a
// request-path compile is safe against a dictionary shared with concurrent
// readers. squares, when non-nil, is scratch for the norm summands.
func (f *Flat) Compile(v map[rdf.Term]float64, d *rdf.Dict, intern bool, squares *[]float64) {
	entries := f.Entries[:0]
	var sq []float64
	if squares != nil {
		sq = (*squares)[:0]
	} else {
		sq = make([]float64, 0, len(v))
	}
	for t, w := range v {
		sq = append(sq, w*w)
		var id rdf.TermID
		var ok bool
		if intern {
			id, ok = d.Intern(t), true
		} else {
			id, ok = d.Lookup(t)
		}
		if ok {
			entries = append(entries, FlatEntry{ID: id, W: w})
		}
	}
	slices.SortFunc(entries, func(a, b FlatEntry) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	f.Entries = entries
	f.Norm = math.Sqrt(SortedSum(sq))
	if squares != nil {
		*squares = sq
	}
}

// CompileFlat compiles a profile's interests against d without interning:
// the read-only request-path form of Compile.
func CompileFlat(p *Profile, d *rdf.Dict) *Flat {
	f := new(Flat)
	f.Compile(p.Interests, d, false, nil)
	return f
}

// CosineFlat computes the cosine similarity of two flat vectors compiled
// against the same Dict. It is bit-identical to CosineVectors over the
// source maps: the matched products form the same multiset, are summed in
// the same sorted order, and the cached norms are the same sorted-sum
// square roots the map path computes per call.
func CosineFlat(a, b *Flat) float64 {
	var buf []float64
	return CosineFlatBuf(a, b, &buf)
}

// CosineFlatBuf is CosineFlat with a caller-owned product scratch buffer,
// for allocation-free scoring loops.
func CosineFlatBuf(a, b *Flat, buf *[]float64) float64 {
	if a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	prods := (*buf)[:0]
	ae, be := a.Entries, b.Entries
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].ID < be[j].ID:
			i++
		case ae[i].ID > be[j].ID:
			j++
		default:
			prods = append(prods, ae[i].W*be[j].W)
			i++
			j++
		}
	}
	*buf = prods
	return SortedSum(prods) / (a.Norm * b.Norm)
}

// SortedSum adds the summands smallest-first (NaNs leading, as
// sort.Float64s orders them), making the floating-point result
// deterministic for a given multiset. It sorts xs in place.
func SortedSum(xs []float64) float64 {
	sort.Float64s(xs)
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
