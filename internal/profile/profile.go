// Package profile models the humans of the paper's §III: users with
// weighted interests over the entities (classes and properties) of a
// knowledge base, an interaction history used for novelty-based diversity,
// and groups of users used by the fairness-aware group recommender.
package profile

import (
	"fmt"
	"math"
	"sort"

	"evorec/internal/rdf"
)

// Profile is one user's interest model. Interests are non-negative weights
// over knowledge-base entities; the recommender matches them against the
// entity scores a measure produces.
type Profile struct {
	// ID identifies the user.
	ID string
	// Interests maps entities to non-negative interest weights.
	Interests map[rdf.Term]float64
	// seen counts how many times each measure ID was already shown to the
	// user; novelty-based diversity decays with it.
	seen map[string]int
}

// New returns an empty profile for the given user ID.
func New(id string) *Profile {
	return &Profile{
		ID:        id,
		Interests: make(map[rdf.Term]float64),
		seen:      make(map[string]int),
	}
}

// SetInterest sets the interest weight for an entity. Negative weights are
// clamped to zero; zero weight removes the entity.
func (p *Profile) SetInterest(t rdf.Term, w float64) {
	if w <= 0 {
		delete(p.Interests, t)
		return
	}
	p.Interests[t] = w
}

// InterestIn returns the interest weight for an entity (0 if absent).
func (p *Profile) InterestIn(t rdf.Term) float64 { return p.Interests[t] }

// TopInterests returns the k highest-weighted entities, ties broken by term
// order.
func (p *Profile) TopInterests(k int) []rdf.Term {
	type pair struct {
		t rdf.Term
		w float64
	}
	ps := make([]pair, 0, len(p.Interests))
	for t, w := range p.Interests {
		ps = append(ps, pair{t, w})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].w != ps[j].w {
			return ps[i].w > ps[j].w
		}
		return ps[i].t.Compare(ps[j].t) < 0
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]rdf.Term, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].t
	}
	return out
}

// MarkSeen records that a measure was shown to the user.
func (p *Profile) MarkSeen(measureID string) { p.seen[measureID]++ }

// SeenCount returns how many times a measure was shown to the user.
func (p *Profile) SeenCount(measureID string) int { return p.seen[measureID] }

// Clone returns a deep copy with the same ID.
func (p *Profile) Clone() *Profile {
	c := New(p.ID)
	for t, w := range p.Interests {
		c.Interests[t] = w
	}
	for m, n := range p.seen {
		c.seen[m] = n
	}
	return c
}

// Norm returns the Euclidean norm of the interest vector.
func (p *Profile) Norm() float64 {
	s := 0.0
	for _, w := range p.Interests {
		s += w * w
	}
	return math.Sqrt(s)
}

// Normalize rescales the interest vector to unit Euclidean norm, in place.
// Zero vectors are left unchanged.
func (p *Profile) Normalize() {
	n := p.Norm()
	if n == 0 {
		return
	}
	for t, w := range p.Interests {
		p.Interests[t] = w / n
	}
}

// Cosine returns the cosine similarity between the profile's interests and
// an arbitrary entity-score vector. Either vector being zero yields 0.
func (p *Profile) Cosine(scores map[rdf.Term]float64) float64 {
	return CosineVectors(p.Interests, scores)
}

// CosineVectors computes the cosine similarity of two sparse vectors. The
// summands are accumulated in ascending order, so the score is a function
// of the vectors alone: map iteration order varies per run, and naive
// accumulation would make repeated recommendations differ in the last bits
// — visible once a service starts comparing concurrent results against
// serial ones. Sorting also adds the small terms first, which is the more
// accurate order.
//
// This is the reference arithmetic the flat kernel (Flat, CosineFlat) is
// held bit-identical to; hot paths compile both sides once and run the
// flat form instead of re-hashing terms and re-deriving norms per call.
func CosineVectors(a, b map[rdf.Term]float64) float64 {
	dots := make([]float64, 0, len(a))
	nas := make([]float64, 0, len(a))
	for t, w := range a {
		nas = append(nas, w*w)
		if v, ok := b[t]; ok {
			dots = append(dots, w*v)
		}
	}
	nbs := make([]float64, 0, len(b))
	for _, v := range b {
		nbs = append(nbs, v*v)
	}
	na, nb := SortedSum(nas), SortedSum(nbs)
	if na == 0 || nb == 0 {
		return 0
	}
	return SortedSum(dots) / (math.Sqrt(na) * math.Sqrt(nb))
}

// JaccardInterests computes the Jaccard similarity of the supported entity
// sets of two profiles.
func JaccardInterests(a, b *Profile) float64 {
	if len(a.Interests) == 0 && len(b.Interests) == 0 {
		return 1
	}
	inter := 0
	for t := range a.Interests {
		if _, ok := b.Interests[t]; ok {
			inter++
		}
	}
	union := len(a.Interests) + len(b.Interests) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Centroid returns the mean interest vector of the given profiles, with ID
// id. The result is what k-anonymity publishes in place of each member.
func Centroid(id string, members []*Profile) *Profile {
	c := New(id)
	if len(members) == 0 {
		return c
	}
	for _, m := range members {
		for t, w := range m.Interests {
			c.Interests[t] += w
		}
	}
	inv := 1 / float64(len(members))
	for t := range c.Interests {
		c.Interests[t] *= inv
	}
	return c
}

// Group is a set of users that receives recommendations together (§III-d).
type Group struct {
	// ID identifies the group.
	ID string
	// Members lists the group's profiles.
	Members []*Profile
}

// NewGroup constructs a group; it fails on empty membership so fairness
// metrics never divide by zero.
func NewGroup(id string, members []*Profile) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("profile: group %q must have at least one member", id)
	}
	return &Group{ID: id, Members: members}, nil
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.Members) }
