package profile

import (
	"bytes"
	"strings"
	"testing"

	"evorec/internal/rdf"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	p := New("alice")
	p.SetInterest(term("Person"), 1)
	p.SetInterest(term("Place"), 0.25)
	p.MarkSeen("change_count")
	p.MarkSeen("change_count")
	p.MarkSeen("relevance_shift")

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "alice" {
		t.Fatalf("ID = %s", back.ID)
	}
	if back.InterestIn(term("Person")) != 1 || back.InterestIn(term("Place")) != 0.25 {
		t.Fatalf("interests = %v", back.Interests)
	}
	if back.SeenCount("change_count") != 2 || back.SeenCount("relevance_shift") != 1 {
		t.Fatal("seen history lost")
	}
}

func TestProfileJSONSkipsNonIRIs(t *testing.T) {
	p := New("u")
	p.SetInterest(term("Keep"), 1)
	p.SetInterest(rdf.NewLiteral("drop"), 1)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Interests) != 1 {
		t.Fatalf("interests = %v, want only the IRI", back.Interests)
	}
	iris := p.SortedInterestIRIs()
	if len(iris) != 1 || !strings.HasSuffix(iris[0], "Keep") {
		t.Fatalf("SortedInterestIRIs = %v", iris)
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := []string{
		`{`,                               // malformed
		`{"interests":{}}`,                // missing ID
		`{"id":"u","interests":{"x":-1}}`, // negative weight
		`{"id":"u","seen":{"m":-2}}`,      // negative seen
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q must fail", in)
		}
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	p := New("u")
	for _, n := range []string{"C", "A", "B"} {
		p.SetInterest(term(n), 1)
	}
	var a, b bytes.Buffer
	if err := p.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSON must be deterministic")
	}
}
