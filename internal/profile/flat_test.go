package profile

import (
	"math"
	"testing"

	"evorec/internal/rdf"
)

func flatTerm(s string) rdf.Term { return rdf.SchemaIRI(s) }

func TestFlatCompileSortsAndCachesNorm(t *testing.T) {
	d := rdf.NewDict()
	// Intern in an order different from the interest iteration so sorting
	// is actually exercised.
	for _, s := range []string{"C", "A", "B"} {
		d.Intern(flatTerm(s))
	}
	v := map[rdf.Term]float64{
		flatTerm("A"):          1,
		flatTerm("B"):          2,
		flatTerm("C"):          3,
		flatTerm("Unresolved"): 4, // not in d: norm-only
	}
	var f Flat
	f.Compile(v, d, false, nil)
	if len(f.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (unresolved term must not be an entry)", len(f.Entries))
	}
	for i := 1; i < len(f.Entries); i++ {
		if f.Entries[i-1].ID >= f.Entries[i].ID {
			t.Fatalf("entries not sorted by ID: %+v", f.Entries)
		}
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if f.Norm != want {
		t.Fatalf("norm = %g, want %g (must include the unresolved term)", f.Norm, want)
	}
	// Recompile reuses storage and refreshes everything.
	f.Compile(map[rdf.Term]float64{flatTerm("B"): 5}, d, false, nil)
	if len(f.Entries) != 1 || f.Entries[0].W != 5 || f.Norm != 5 {
		t.Fatalf("recompile: %+v norm %g", f.Entries, f.Norm)
	}
}

func TestFlatCompileInternGrowsDict(t *testing.T) {
	d := rdf.NewDict()
	var f Flat
	f.Compile(map[rdf.Term]float64{flatTerm("New"): 1}, d, true, nil)
	if len(f.Entries) != 1 {
		t.Fatalf("interning compile must resolve every term: %+v", f.Entries)
	}
	if _, ok := d.Lookup(flatTerm("New")); !ok {
		t.Fatal("interning compile must add the term to the dictionary")
	}
}

func TestCosineFlatZeroAndNaNNorms(t *testing.T) {
	d := rdf.NewDict()
	var a, b, zero, nan Flat
	a.Compile(map[rdf.Term]float64{flatTerm("A"): 1}, d, true, nil)
	b.Compile(map[rdf.Term]float64{flatTerm("A"): 2, flatTerm("B"): 1}, d, true, nil)
	zero.Compile(map[rdf.Term]float64{}, d, true, nil)
	nan.Compile(map[rdf.Term]float64{flatTerm("A"): math.NaN()}, d, true, nil)

	if got := CosineFlat(&a, &zero); got != 0 {
		t.Fatalf("cosine against zero-norm = %g, want 0", got)
	}
	if got := CosineFlat(&a, &b); got <= 0 || got > 1 {
		t.Fatalf("cosine = %g, want (0,1]", got)
	}
	if got := CosineFlat(&a, &nan); !math.IsNaN(got) {
		t.Fatalf("cosine against NaN-norm = %g, want NaN (reference arithmetic)", got)
	}
}
