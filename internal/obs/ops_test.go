package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func readyzGet(t *testing.T, h http.Handler) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body %q: %v", rec.Body, err)
	}
	return rec, body
}

func TestReadyHandler(t *testing.T) {
	ready := true
	h := ReadyHandler(func() (bool, map[string]any) {
		return ready, map[string]any{"replays_in_flight": 2}
	})

	rec, body := readyzGet(t, h)
	if rec.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("ready check: %d %v", rec.Code, body)
	}
	if body["replays_in_flight"] != float64(2) {
		t.Fatalf("detail must be merged into the body: %v", body)
	}

	ready = false
	rec, body = readyzGet(t, h)
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Fatalf("not-ready check: %d %v", rec.Code, body)
	}

	// A nil check degrades to liveness: always ready.
	rec, body = readyzGet(t, ReadyHandler(nil))
	if rec.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("nil check: %d %v", rec.Code, body)
	}
}

// TestOpsMuxReadyAndTraces covers the mux wiring: /readyz reflects the
// configured check and /debug/traces appears exactly when a tracer is set.
func TestOpsMuxReadyAndTraces(t *testing.T) {
	tracer := NewTracer(TracerConfig{SampleRate: 1})
	mux := OpsMux(OpsConfig{
		Tracer: tracer,
		Ready:  func() (bool, map[string]any) { return false, nil },
	})
	rec, body := readyzGet(t, mux)
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Fatalf("/readyz: %d %v", rec.Code, body)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d with a tracer configured", rec.Code)
	}

	bare := OpsMux(OpsConfig{})
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/traces = %d without a tracer", rec.Code)
	}
	rec, body = readyzGet(t, bare)
	if rec.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("bare /readyz: %d %v", rec.Code, body)
	}
}
