package obs

import (
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// RequestIDHeader is the header request IDs propagate through: an incoming
// value is honored (so a client or proxy can stitch its own traces), a
// missing one is minted, and the final ID is echoed on the response and
// attached to the request context and every access-log line.
const RequestIDHeader = "X-Request-Id"

// HTTPMetrics is the per-endpoint instrument set the middleware feeds:
//
//	evorec_http_requests_total{route,method,class}  status-class counters
//	evorec_http_request_seconds{route}              latency histogram
//	evorec_http_in_flight                           currently-served gauge
//	evorec_http_response_bytes_total{route}         body bytes written
//	evorec_http_panics_total{route}                 handler panics contained
//
// Routes are mux patterns ("/v1/datasets/{name}"), never raw paths, so
// label cardinality is fixed by the API surface.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inFlight *Gauge
	bytes    *CounterVec
	panics   *CounterVec
	logger   *slog.Logger
	tracer   *Tracer
}

// NewHTTPMetrics builds (or rebinds, registration is get-or-create) the
// HTTP instrument set on reg with the default latency bucket schedule.
// Every argument may be nil: a nil registry disables metrics, a nil logger
// disables access logs, a nil tracer disables traceparent handling, and
// with all three nil Wrap returns handlers unchanged.
func NewHTTPMetrics(reg *Registry, logger *slog.Logger, tracer *Tracer) *HTTPMetrics {
	return NewHTTPMetricsBuckets(reg, logger, tracer, nil)
}

// NewHTTPMetricsBuckets is NewHTTPMetrics with a custom latency bucket
// schedule for evorec_http_request_seconds (nil keeps DefBuckets), for
// deployments whose latency envelope the default schedule resolves poorly.
// Buckets must be positive and strictly increasing — ParseBuckets validates
// exactly this. The registry's get-or-create contract still applies: the
// first registration of the histogram fixes its buckets for the process.
func NewHTTPMetricsBuckets(reg *Registry, logger *slog.Logger, tracer *Tracer, buckets []float64) *HTTPMetrics {
	if reg == nil && logger == nil && tracer == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HTTPMetrics{
		tracer: tracer,
		requests: reg.CounterVec("evorec_http_requests_total",
			"HTTP requests served, by route pattern, method and status class.",
			"route", "method", "class"),
		latency: reg.HistogramVec("evorec_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			buckets, "route"),
		inFlight: reg.Gauge("evorec_http_in_flight",
			"HTTP requests currently being served."),
		bytes: reg.CounterVec("evorec_http_response_bytes_total",
			"HTTP response body bytes written, by route pattern.",
			"route"),
		panics: reg.CounterVec("evorec_http_panics_total",
			"Handler panics recovered by the containment middleware (request got a 500, server kept serving).",
			"route"),
		logger: logger,
	}
}

// ParseBuckets parses a comma-separated histogram bucket schedule in
// seconds ("0.005,0.025,0.1,0.5,2"). It validates what a usable exposition
// requires: at least one bound, every bound a positive finite number, and
// strict ascent. The +Inf bucket is implicit and must not be listed.
func ParseBuckets(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("obs: empty bucket bound in %q", spec)
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bucket bound %q is not a number", p)
		}
		if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
			return nil, fmt.Errorf("obs: bucket bound %q must be positive and finite (+Inf is implicit)", p)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("obs: bucket bounds must be strictly increasing, got %g after %g", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	return out, nil
}

// serveContained runs the handler under panic containment: a panicking
// handler yields a 500 (when no response has started), a tick of
// evorec_http_panics_total{route}, an Error log line with the stack, and a
// "panic" span attribute — and the goroutine returns normally, so the
// accounting after it (latency, status class, in-flight) still runs and
// the server keeps serving. Only net/http's own ErrAbortHandler is
// re-raised; it is the sanctioned way to abort a response mid-flight.
func (m *HTTPMetrics) serveContained(route string, rw *respWriter, r *http.Request, next http.Handler, span *Span, reqID string) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		m.panics.With(route).Inc()
		stack := string(debug.Stack())
		span.SetAttr("panic", fmt.Sprint(rec))
		if m.logger != nil {
			m.logger.Error("handler panicked",
				"request_id", reqID,
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"panic", fmt.Sprint(rec),
				"stack", stack,
			)
		}
		if rw.status == 0 {
			http.Error(rw, "internal server error", http.StatusInternalServerError)
		}
	}()
	next.ServeHTTP(rw, r)
}

// RouteLabel derives the metrics label from a mux pattern: the method
// prefix of Go 1.22 patterns ("GET /v1/...") is dropped, the path shape
// kept.
func RouteLabel(pattern string) string {
	if method, path, ok := strings.Cut(pattern, " "); ok && !strings.Contains(method, "/") {
		return path
	}
	return pattern
}

// statusClass collapses a status code to its exposition class.
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// respWriter captures status and body size. An unset status means the
// handler never called WriteHeader: net/http sends 200 on first Write.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Wrap instruments one route: request-ID propagation, traceparent
// join/mint with a root span per sampled request, in-flight gauge, latency
// histogram (with a trace exemplar when sampled), status-class and byte
// counters, and one access-log line per request. A nil receiver returns
// next unchanged, so the uninstrumented server is byte-for-byte the PR 6
// one.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	requests := m.requests // child lookups hoisted out of the hot path
	latency := m.latency.With(route)
	bytes := m.bytes.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := WithRequestID(r.Context(), id)
		var span *Span
		traceID := ""
		if m.tracer != nil {
			var echo string
			var sampled bool
			ctx, span, echo, sampled = m.tracer.StartRequest(ctx, r.Header.Get(TraceparentHeader), route, id)
			if echo != "" {
				w.Header().Set(TraceparentHeader, echo)
			}
			if sampled {
				traceID = span.TraceID().String()
			}
		}
		rw := &respWriter{ResponseWriter: w}
		start := time.Now()
		m.inFlight.Add(1)
		// Deferred, not sequential: a re-raised http.ErrAbortHandler must
		// still balance the gauge on its way up to net/http's recovery.
		defer m.inFlight.Add(-1)
		m.serveContained(route, rw, r.WithContext(ctx), next, span, id)
		elapsed := time.Since(start)
		status := rw.status
		if status == 0 {
			status = http.StatusOK // body-less handler: net/http defaults to 200
		}
		if span != nil {
			span.SetAttr("method", r.Method)
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
			latency.ObserveExemplar(elapsed.Seconds(), traceID)
		} else {
			latency.Observe(elapsed.Seconds())
		}
		requests.With(route, r.Method, statusClass(status)).Inc()
		bytes.Add(float64(rw.bytes))
		if m.logger != nil {
			if traceID != "" {
				m.logger.Info("request",
					"request_id", id,
					"trace_id", traceID,
					"method", r.Method,
					"route", route,
					"path", r.URL.Path,
					"status", status,
					"bytes", rw.bytes,
					"duration", elapsed,
				)
			} else {
				m.logger.Info("request",
					"request_id", id,
					"method", r.Method,
					"route", route,
					"path", r.URL.Path,
					"status", status,
					"bytes", rw.bytes,
					"duration", elapsed,
				)
			}
		}
	})
}
