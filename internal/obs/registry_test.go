package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden locks the Prometheus text format (version 0.0.4)
// byte for byte across every instrument kind: HELP/TYPE headers, sorted
// families, sorted label blocks, cumulative histogram buckets with le
// labels, and shortest-round-trip float rendering.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Operations.").Add(3)
	reg.Gauge("test_depth", "Queue depth.").Set(2.5)
	h := reg.Histogram("test_batch_size", "Batch sizes.", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	rv := reg.CounterVec("test_req_total", "Requests.", "route", "class")
	rv.With("/a", "2xx").Inc()
	rv.With("/a", "5xx").Add(2)
	hv := reg.HistogramVec("test_lat_seconds", "Latency.", []float64{0.5}, "route")
	hv.With("/a").Observe(0.25)

	const want = `# HELP test_batch_size Batch sizes.
# TYPE test_batch_size histogram
test_batch_size_bucket{le="1"} 1
test_batch_size_bucket{le="2"} 1
test_batch_size_bucket{le="4"} 2
test_batch_size_bucket{le="+Inf"} 3
test_batch_size_sum 104
test_batch_size_count 3
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 2.5
# HELP test_lat_seconds Latency.
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.5",route="/a"} 1
test_lat_seconds_bucket{le="+Inf",route="/a"} 1
test_lat_seconds_sum{route="/a"} 0.25
test_lat_seconds_count{route="/a"} 1
# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_req_total Requests.
# TYPE test_req_total counter
test_req_total{class="2xx",route="/a"} 1
test_req_total{class="5xx",route="/a"} 2
`
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// expositionLine matches one valid text-format sample or comment line.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [^ ]+)$`)

// TestSinkSeries drives the store and feed sinks with deterministic
// observations and asserts the snapshot values of every published series —
// the WAL, checkpoint, cache and fan-out families the dashboards key on —
// plus that the full exposition stays line-valid text format.
func TestSinkSeries(t *testing.T) {
	reg := NewRegistry()
	ss := NewStoreSink(reg)
	ss.ObserveWALAppend(128, 2*time.Millisecond)
	ss.ObserveWALAppend(64, 3*time.Millisecond)
	ss.ObserveWALFsync(time.Millisecond)
	ss.ObserveCheckpoint("idle", 20*time.Millisecond)
	ss.ObserveCheckpoint("wal-bound", 40*time.Millisecond)
	ss.AddSegmentBytes(1024)
	ss.ObserveCacheAccess(true)
	ss.ObserveCacheAccess(true)
	ss.ObserveCacheAccess(false)
	ss.SetWALSize(4096)
	fs := NewFeedSink(reg)
	fs.ObserveFanOut(10, 7, 5*time.Millisecond)
	fs.FanOutSkipped()

	snap := reg.Snapshot()
	for key, want := range map[string]float64{
		"evorec_wal_append_seconds_count":                                      2,
		"evorec_wal_append_bytes_total":                                        192,
		"evorec_wal_fsync_seconds_count":                                       1,
		"evorec_wal_size_bytes":                                                4096,
		`evorec_store_checkpoint_seconds_count{reason="idle"}`:                 1,
		`evorec_store_checkpoint_seconds_bucket{le="0.05",reason="wal-bound"}`: 1,
		"evorec_store_segment_bytes_total":                                     1024,
		"evorec_store_cache_hits_total":                                        2,
		"evorec_store_cache_misses_total":                                      1,
		"evorec_fanout_seconds_count":                                          1,
		`evorec_fanout_affected_bucket{le="16"}`:                               1,
		"evorec_fanout_notified_total":                                         7,
		"evorec_fanout_skipped_total":                                          1,
	} {
		if got, ok := snap[key]; !ok || got != want {
			t.Errorf("snapshot[%s] = %v (present=%v), want %v", key, got, ok, want)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

// TestGetOrCreate locks the registry's sharing semantics: the same name
// yields the same instrument (so independently constructed sinks share
// series), and reusing a name with a different kind panics.
func TestGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.")
	b := reg.Counter("x_total", "ignored on rebind")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("shared counter value = %v, want 1", b.Value())
	}
	if s1, s2 := NewStoreSink(reg), NewStoreSink(reg); s1.walBytes != s2.walBytes {
		t.Error("rebinding StoreSink did not share series")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "now a gauge")
}

// TestNilSafety exercises every nil path: a nil registry hands out nil
// instruments and nil sinks whose methods are all no-ops, which is how the
// whole substrate switches off.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a", "").Inc()
	reg.Gauge("b", "").Set(1)
	reg.Histogram("c", "", nil).Observe(1)
	reg.CounterVec("d", "", "l").With("v").Inc()
	reg.HistogramVec("e", "", nil, "l").With("v").Observe(1)
	NewStoreSink(reg).ObserveWALFsync(time.Second)
	NewFeedSink(reg).FanOutSkipped()
	NewHTTPMetrics(reg, nil, nil)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Snapshot()); n != 0 {
		t.Errorf("nil registry snapshot has %d series", n)
	}
}

// TestLabelEscaping locks the escaping of quotes, backslashes and newlines
// in label values.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "Escapes.", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition %q does not contain %q", sb.String(), want)
	}
}
