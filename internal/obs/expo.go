package obs

import (
	"bufio"
	"expvar"
	"io"
	"math"
	"net/http"
	"strconv"
)

// formatFloat renders a sample value in the shortest round-trip form, the
// way Prometheus client libraries do ("3", "0.25", "1e-05", "+Inf").
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in the text exposition format
// (version 0.0.4): HELP and TYPE lines followed by the samples, families
// sorted by name, series sorted by label values — deterministic, which is
// what the golden test locks. Exemplars are never emitted here; the opt-in
// WriteExposition variant carries them.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WriteExposition(w, false)
}

// WriteExposition writes the text exposition, optionally suffixing
// histogram bucket lines with their latest exemplar in the OpenMetrics
// form (`… # {trace_id="…"} value`), which links a bucket to the trace in
// /debug/traces that landed in it. The default scrape stays plain 0.0.4 —
// exemplars are opt-in via /metrics?exemplars=1 because classic text-format
// parsers reject the trailing comment.
func (r *Registry) WriteExposition(w io.Writer, exemplars bool) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var scratch []sample
	for _, fam := range r.families() {
		if h := fam.inst.help(); h != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(h)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.inst.kind())
		bw.WriteByte('\n')
		scratch = fam.inst.series(fam.name, scratch[:0], exemplars)
		for _, s := range scratch {
			bw.WriteString(fam.name)
			bw.WriteString(s.suffix)
			bw.WriteString(s.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.value))
			bw.WriteString(s.exemplar)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Snapshot returns every series as a flat name{labels} -> value map: the
// expvar mirror's payload and what `evorec bench -json` embeds so a
// throughput number can be read next to the internal counters that
// produced it.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	var scratch []sample
	for _, fam := range r.families() {
		scratch = fam.inst.series(fam.name, scratch[:0], false)
		for _, s := range scratch {
			out[fam.name+s.suffix+s.labels] = s.value
		}
	}
	return out
}

// Handler returns the GET /metrics endpoint. `?exemplars=1` switches to
// the exemplar-carrying exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//nolint:errcheck // client went away; nothing to do
		r.WriteExposition(w, req.URL.Query().Get("exemplars") == "1")
	})
}

// PublishExpvar mirrors the registry under the given expvar name (it
// appears in /debug/vars next to the runtime's memstats). Publishing an
// already-published name is a no-op rather than the expvar panic, so tests
// and multi-service processes can call it freely; the first registry wins.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
