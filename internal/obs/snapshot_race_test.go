package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotRace hammers Snapshot while other goroutines concurrently
// register new instruments and observe existing ones. Run under -race this
// pins Snapshot's locking discipline: registration mutates the family list
// and vec maps at the same time the snapshot walks them, and every value
// read races a writer. The final snapshot (after all writers join) must also
// balance the books exactly.
func TestSnapshotRace(t *testing.T) {
	reg := NewRegistry()
	base := reg.Counter("race_base_total", "Pre-registered counter.")
	vec := reg.CounterVec("race_req_total", "Pre-registered vec.", "route")
	hist := reg.Histogram("race_lat_seconds", "Pre-registered histogram.", []float64{1, 2})

	const (
		writers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				base.Inc()
				vec.With(fmt.Sprintf("/r%d", i%8)).Inc()
				hist.Observe(float64(i % 3))
				// Fresh names force family-list mutation mid-walk.
				reg.Counter(fmt.Sprintf("race_dyn_%d_%d_total", w, i), "Dynamic.").Inc()
				reg.Gauge(fmt.Sprintf("race_gauge_%d_%d", w, i), "Dynamic.").Set(float64(i))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 100; i++ {
			snap := reg.Snapshot()
			// Whatever instant the walk caught, histogram books must balance.
			if c, ok := snap["race_lat_seconds_count"]; ok {
				if inf := snap[`race_lat_seconds_bucket{le="+Inf"}`]; inf != c {
					t.Errorf("snapshot %d: +Inf bucket %g != count %g", i, inf, c)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readerDone

	snap := reg.Snapshot()
	if got := snap["race_base_total"]; got != writers*rounds {
		t.Errorf("race_base_total = %g, want %d", got, writers*rounds)
	}
	var vecSum float64
	dyn := 0
	for key, v := range snap {
		if strings.HasPrefix(key, "race_req_total{") {
			vecSum += v
		}
		if strings.HasPrefix(key, "race_dyn_") {
			dyn++
			if v != 1 {
				t.Errorf("%s = %g, want 1", key, v)
			}
		}
	}
	if vecSum != writers*rounds {
		t.Errorf("race_req_total sums to %g, want %d", vecSum, writers*rounds)
	}
	if dyn != writers*rounds {
		t.Errorf("%d dynamic counters registered, want %d", dyn, writers*rounds)
	}
	if got := snap["race_lat_seconds_count"]; got != writers*rounds {
		t.Errorf("race_lat_seconds_count = %g, want %d", got, writers*rounds)
	}
}
