package obs

import "time"

// StoreSink implements internal/store's Telemetry interface structurally
// (obs never imports store — the storage layer declares the contract, this
// package satisfies it), publishing:
//
//	evorec_wal_append_seconds            whole WAL append incl. fsync
//	evorec_wal_fsync_seconds             the fsync alone
//	evorec_wal_append_bytes_total        record bytes logged
//	evorec_wal_size_bytes                current WAL size (gauge)
//	evorec_store_checkpoint_seconds{reason}  checkpoint duration by trigger
//	evorec_store_segment_bytes_total     segment bytes written
//	evorec_store_cache_{hits,misses}_total   graph-LRU materialization
//
// Nil-receiver safe throughout, so a dataset without a sink pays one nil
// check per event.
type StoreSink struct {
	walAppend   *Histogram
	walFsync    *Histogram
	walBytes    *Counter
	walSize     *Gauge
	checkpoint  *HistogramVec
	segBytes    *Counter
	cacheHits   *Counter
	cacheMisses *Counter
}

// NewStoreSink binds the store instrument set on reg (nil reg -> nil sink).
func NewStoreSink(reg *Registry) *StoreSink {
	if reg == nil {
		return nil
	}
	return &StoreSink{
		walAppend: reg.Histogram("evorec_wal_append_seconds",
			"WAL group-append latency in seconds (encode excluded, fsync included).", DefBuckets),
		walFsync: reg.Histogram("evorec_wal_fsync_seconds",
			"WAL fsync latency in seconds — the durability floor of every commit.", DefBuckets),
		walBytes: reg.Counter("evorec_wal_append_bytes_total",
			"Bytes appended to write-ahead logs."),
		walSize: reg.Gauge("evorec_wal_size_bytes",
			"Current write-ahead log size in bytes (what the next checkpoint absorbs)."),
		checkpoint: reg.HistogramVec("evorec_store_checkpoint_seconds",
			"Store checkpoint duration in seconds, by trigger reason.", DefBuckets, "reason"),
		segBytes: reg.Counter("evorec_store_segment_bytes_total",
			"Segment-file bytes written (snapshots, deltas, dictionary rewrites)."),
		cacheHits: reg.Counter("evorec_store_cache_hits_total",
			"Graph-LRU hits on version materialization."),
		cacheMisses: reg.Counter("evorec_store_cache_misses_total",
			"Graph-LRU misses on version materialization (each one replays segments)."),
	}
}

// ObserveWALAppend records one group append: total latency and logged bytes.
func (s *StoreSink) ObserveWALAppend(bytes int, d time.Duration) {
	if s == nil {
		return
	}
	s.walAppend.Observe(d.Seconds())
	s.walBytes.Add(float64(bytes))
}

// ObserveWALFsync records one WAL fsync.
func (s *StoreSink) ObserveWALFsync(d time.Duration) {
	if s == nil {
		return
	}
	s.walFsync.Observe(d.Seconds())
}

// ObserveCheckpoint records one checkpoint under its trigger reason
// ("replay", "wal-bound", "idle", "explicit", "close").
func (s *StoreSink) ObserveCheckpoint(reason string, d time.Duration) {
	if s == nil {
		return
	}
	s.checkpoint.With(reason).Observe(d.Seconds())
}

// AddSegmentBytes records segment-file bytes written.
func (s *StoreSink) AddSegmentBytes(n int64) {
	if s == nil {
		return
	}
	s.segBytes.Add(float64(n))
}

// ObserveCacheAccess records one graph-LRU probe.
func (s *StoreSink) ObserveCacheAccess(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.cacheHits.Inc()
	} else {
		s.cacheMisses.Inc()
	}
}

// SetWALSize tracks the WAL's current size.
func (s *StoreSink) SetWALSize(n int64) {
	if s == nil {
		return
	}
	s.walSize.Set(float64(n))
}

// FeedSink implements internal/feed's Telemetry interface, publishing:
//
//	evorec_fanout_seconds         commit-triggered fan-out duration
//	evorec_fanout_affected        affected-subscriber count distribution
//	evorec_fanout_notified_total  notifications appended to feed logs
//	evorec_fanout_skipped_total   ledger-skipped replays (idempotent pairs)
type FeedSink struct {
	duration *Histogram
	affected *Histogram
	notified *Counter
	skipped  *Counter
}

// NewFeedSink binds the feed instrument set on reg (nil reg -> nil sink).
func NewFeedSink(reg *Registry) *FeedSink {
	if reg == nil {
		return nil
	}
	return &FeedSink{
		duration: reg.Histogram("evorec_fanout_seconds",
			"Commit-triggered fan-out duration in seconds (index intersection + scoring + log appends).",
			DefBuckets),
		affected: reg.Histogram("evorec_fanout_affected",
			"Subscribers matched by the inverted interest index per fan-out — the set actually scored.",
			SizeBuckets),
		notified: reg.Counter("evorec_fanout_notified_total",
			"Notifications appended to feed logs."),
		skipped: reg.Counter("evorec_fanout_skipped_total",
			"Fan-outs skipped by the idempotence ledger (pair already delivered)."),
	}
}

// ObserveFanOut records one delivered fan-out.
func (s *FeedSink) ObserveFanOut(affected, notified int, d time.Duration) {
	if s == nil {
		return
	}
	s.duration.Observe(d.Seconds())
	s.affected.Observe(float64(affected))
	s.notified.Add(float64(notified))
}

// FanOutSkipped records one ledger-skipped replay.
func (s *FeedSink) FanOutSkipped() {
	if s == nil {
		return
	}
	s.skipped.Inc()
}
