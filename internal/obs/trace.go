package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceparentHeader is the W3C Trace Context header traces propagate
// through: an incoming sampled traceparent is joined (its trace ID adopted
// and its span ID recorded as the root's parent), an unsampled one has its
// IDs propagated without recording, and a missing or malformed one causes
// fresh IDs to be minted under the tracer's head-sampling rate. The
// canonical form is echoed on every response.
const TraceparentHeader = "traceparent"

// DefaultTraceRing is the completed-trace ring capacity when
// TracerConfig.RingSize is unset.
const DefaultTraceRing = 256

// TraceID is a 128-bit W3C trace identifier. The zero value is invalid by
// specification and never minted.
type TraceID [16]byte

// SpanID is a 64-bit W3C span identifier. The zero value is invalid.
type SpanID [8]byte

// IsZero reports the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var b [32]byte
	hexEncode(b[:], t[:])
	return string(b[:])
}

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [16]byte
	hexEncode(b[:], s[:])
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func hexEncode(dst, src []byte) {
	for i, v := range src {
		dst[2*i] = hexDigits[v>>4]
		dst[2*i+1] = hexDigits[v&0x0f]
	}
}

// hexDecode fills dst from lowercase hex, rejecting uppercase: the W3C
// spec defines the fields as lowercase and forbids case-insensitive
// matching, so "ABCD..." is a malformed header, not an alternate spelling.
func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). It returns ok=false for anything
// malformed: wrong length or separators, non-lowercase hex, the forbidden
// version ff, or all-zero trace/span IDs. Versions above 00 are accepted
// with trailing fields ignored, as the spec requires of forward-compatible
// consumers.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, sampled bool, ok bool) {
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2) == 55 bytes.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	var ver [1]byte
	if !hexDecode(ver[:], h[0:2]) || h[0:2] == "ff" {
		return TraceID{}, SpanID{}, false, false
	}
	if len(h) > 55 && (h[0:2] == "00" || h[55] != '-') {
		// Version 00 is exactly 55 bytes; future versions may append more
		// dash-separated fields but never extend the flags field itself.
		return TraceID{}, SpanID{}, false, false
	}
	if !hexDecode(tid[:], h[3:35]) || tid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	if !hexDecode(parent[:], h[36:52]) || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if !hexDecode(flags[:], h[53:55]) {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags[0]&0x01 != 0, true
}

// FormatTraceparent renders the canonical version-00 header.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	b := make([]byte, 55)
	b[0], b[1], b[2] = '0', '0', '-'
	hexEncode(b[3:35], tid[:])
	b[35] = '-'
	hexEncode(b[36:52], sid[:])
	b[52], b[53] = '-', '0'
	if sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b)
}

// newTraceID mints a random non-zero trace ID. math/rand/v2's global
// generator (chacha8-seeded, lock-free) is deliberate: minting must not
// cost a syscall or an allocation on the request path, and trace IDs need
// uniqueness, not unpredictability.
func newTraceID() TraceID {
	for {
		var t TraceID
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (56 - 8*i))
			t[8+i] = byte(lo >> (56 - 8*i))
		}
		if !t.IsZero() {
			return t
		}
	}
}

// newSpanID mints a random non-zero span ID.
func newSpanID() SpanID {
	for {
		var s SpanID
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (56 - 8*i))
		}
		if !s.IsZero() {
			return s
		}
	}
}

// ---------------------------------------------------------------------------
// Spans and traces

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as it appears in a trace: children end
// before their parent, so records are in end order and the root is always
// the final element.
type SpanRecord struct {
	Name string `json:"name"`
	// SpanID and ParentID are hex strings; a root span minted locally has
	// no ParentID, a root joined from an inbound traceparent carries the
	// remote caller's span ID (which is not among the trace's own spans).
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Trace is one completed request timeline, published to the ring when its
// root span ends.
type Trace struct {
	TraceID   string `json:"trace_id"`
	RequestID string `json:"request_id,omitempty"`
	Route     string `json:"route,omitempty"`
	// Seq is the ring's monotonic publication sequence (1-based), assigned
	// when the trace lands in the ring. A scraper that remembers the
	// max_seq of its last poll and passes it back as since_seq reads every
	// trace exactly once (up to ring overwrite).
	Seq        uint64       `json:"seq"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Spans      []SpanRecord `json:"spans"`
}

// traceData is the mutable state shared by every span of one sampled
// trace; the context carries a *Span, which points here. Completed span
// records accumulate under mu until the root ends and publishes.
type traceData struct {
	tr        *Tracer
	traceID   TraceID
	route     string
	requestID string

	mu    sync.Mutex
	spans []SpanRecord
	done  bool
}

// Span is one live span of a sampled trace. All methods are nil-receiver
// safe — an unsampled or untraced request carries a nil *Span and every
// operation on it is a single branch, which is what keeps the sampled-out
// hot paths at their pre-tracing allocation profile.
type Span struct {
	data   *traceData
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	root   bool
}

// SetAttr annotates the span. Attributes ride along into the SpanRecord.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// TraceID returns the owning trace's ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.traceID
}

// End completes the span, appending its record to the trace. Ending the
// root span publishes the whole trace to the tracer's ring (and the slow
// log when over threshold); a straggler child ending after the root has
// published — possible for fire-and-forget work outliving the request —
// is dropped rather than mutating an exposed trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	rec := SpanRecord{
		Name:       s.name,
		SpanID:     s.id.String(),
		Start:      s.start,
		DurationNS: int64(dur),
		Attrs:      s.attrs,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	d := s.data
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		return
	}
	d.spans = append(d.spans, rec)
	if !s.root {
		d.mu.Unlock()
		return
	}
	d.done = true
	spans := d.spans
	d.mu.Unlock()
	d.tr.publish(&Trace{
		TraceID:    d.traceID.String(),
		RequestID:  d.requestID,
		Route:      d.route,
		Start:      s.start,
		DurationNS: int64(dur),
		Spans:      spans,
	})
}

// spanKey is the context key the current span travels under.
type spanKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span (nil when untraced).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceIDFrom returns the hex trace ID the context's sampled span belongs
// to ("" when untraced), for attributing logs and CommitInfo to a trace.
func TraceIDFrom(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.data.traceID.String()
	}
	return ""
}

// StartSpan starts a child of the context's current span. On an untraced
// or sampled-out context it returns (ctx, nil) after one context lookup —
// no allocation — and every method on the nil span is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		data:   parent.data,
		id:     newSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return ContextWithSpan(ctx, s), s
}

// nopSpanEnd is the shared completion callback ChildSpanner hands out on
// unsampled contexts, so the disabled path allocates nothing.
var nopSpanEnd = func(...string) {}

// ChildSpanner adapts the context-driven StartSpan to the structural
// Spanner interfaces internal/store and internal/feed declare (they never
// import obs, mirroring the Telemetry pattern). The callback takes
// alternating key/value attribute pairs applied at completion.
type ChildSpanner struct{}

// StartSpan implements the store/feed Spanner contract.
func (ChildSpanner) StartSpan(ctx context.Context, name string) (context.Context, func(attrs ...string)) {
	ctx, s := StartSpan(ctx, name)
	if s == nil {
		return ctx, nopSpanEnd
	}
	return ctx, func(attrs ...string) {
		for i := 0; i+1 < len(attrs); i += 2 {
			s.SetAttr(attrs[i], attrs[i+1])
		}
		s.End()
	}
}

// ---------------------------------------------------------------------------
// Tracer

// TracerConfig parameterizes NewTracer.
type TracerConfig struct {
	// RingSize is the completed-trace ring capacity (DefaultTraceRing when
	// <= 0).
	RingSize int
	// SampleRate is the head-sampling probability for traces minted
	// locally, in [0, 1]; out-of-range values clamp. 0 records no minted
	// traces — inbound traceparents still decide for themselves: a sampled
	// one is always recorded, an unsampled one never is, so an upstream
	// head decision holds across the fleet.
	SampleRate float64
	// SlowThreshold enables a slog warning for every published trace at
	// least this long (0 disables slow-trace logging).
	SlowThreshold time.Duration
	// Logger receives slow-trace warnings; nil disables them.
	Logger *slog.Logger
}

// Tracer is the process-wide tracing substrate: it decides head sampling,
// owns the completed-trace ring behind GET /debug/traces, and emits the
// slow-trace log. A nil *Tracer disables tracing everywhere it is passed;
// all methods are nil-receiver safe.
type Tracer struct {
	ring   traceRing
	rate   float64
	slow   time.Duration
	logger *slog.Logger
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultTraceRing
	}
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	return &Tracer{
		ring:   traceRing{slots: make([]atomic.Pointer[Trace], size)},
		rate:   rate,
		slow:   cfg.SlowThreshold,
		logger: cfg.Logger,
	}
}

// sampleMinted decides head sampling for a locally minted trace.
func (t *Tracer) sampleMinted() bool {
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	return rand.Float64() < t.rate
}

// StartRequest begins the root span for one HTTP request. It joins an
// inbound traceparent when present and valid (honoring its sampled flag in
// both directions), otherwise mints fresh IDs under the head-sampling
// rate. It returns the span-carrying context, the root span (nil when the
// request is not recorded), the canonical traceparent to echo on the
// response, and whether the request is sampled. A nil tracer returns the
// inputs untouched.
func (t *Tracer) StartRequest(ctx context.Context, traceparent, route, requestID string) (context.Context, *Span, string, bool) {
	if t == nil {
		return ctx, nil, "", false
	}
	tid, parent, sampled, ok := ParseTraceparent(traceparent)
	if !ok {
		tid, parent = newTraceID(), SpanID{}
		sampled = t.sampleMinted()
	}
	sid := newSpanID()
	echo := FormatTraceparent(tid, sid, sampled)
	if !sampled {
		return ctx, nil, echo, false
	}
	s := &Span{
		data:   &traceData{tr: t, traceID: tid, route: route, requestID: requestID},
		id:     sid,
		parent: parent,
		name:   route,
		start:  time.Now(),
		root:   true,
	}
	return ContextWithSpan(ctx, s), s, echo, true
}

// StartRoot begins a root span outside any HTTP request (tests, batch
// jobs). It always samples; a nil tracer returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		data:  &traceData{tr: t, traceID: newTraceID(), route: name},
		id:    newSpanID(),
		name:  name,
		start: time.Now(),
		root:  true,
	}
	return ContextWithSpan(ctx, s), s
}

// publish stores a completed trace in the ring and emits the slow-trace
// warning when it crossed the threshold.
func (t *Tracer) publish(tr *Trace) {
	t.ring.put(tr)
	if t.slow > 0 && t.logger != nil && time.Duration(tr.DurationNS) >= t.slow {
		t.logger.Warn("slow trace",
			"trace_id", tr.TraceID,
			"request_id", tr.RequestID,
			"route", tr.Route,
			"duration", time.Duration(tr.DurationNS),
			"spans", len(tr.Spans),
			"top_self_time", strings.Join(topSelfTime(tr.Spans, 3), ", "),
		)
	}
}

// topSelfTime ranks spans by self time — own duration minus the summed
// duration of direct children — and renders the top n as "name=duration".
// Self time is what makes a slow trace diagnosable from the log line alone:
// a root span always dominates total time, but the span that burned the
// wall clock itself is the one to look at.
func topSelfTime(spans []SpanRecord, n int) []string {
	childSum := make(map[string]int64, len(spans))
	for _, s := range spans {
		if s.ParentID != "" {
			childSum[s.ParentID] += s.DurationNS
		}
	}
	type selfSpan struct {
		name string
		self int64
	}
	ranked := make([]selfSpan, 0, len(spans))
	for _, s := range spans {
		self := s.DurationNS - childSum[s.SpanID]
		if self < 0 {
			self = 0 // clock skew between parent and child reads
		}
		ranked = append(ranked, selfSpan{s.Name, self})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].self > ranked[j].self })
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	out := make([]string, len(ranked))
	for i, e := range ranked {
		out[i] = e.name + "=" + time.Duration(e.self).String()
	}
	return out
}

// LastSeq returns the highest ring sequence assigned so far (0 before any
// trace published; nil-safe). TracesHandler reports it as max_seq so a
// scraper can advance its since_seq cursor even when filters hide the
// newest traces.
func (t *Tracer) LastSeq() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.pos.Load()
}

// Traces snapshots the ring, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// traceRing is a lock-cheap fixed-size ring of completed traces: one
// atomic counter claims slots, one atomic pointer store publishes a trace,
// and readers walk the slots without blocking writers. A torn read under
// churn can skip or repeat a slot — acceptable for a debug surface, and
// what keeps publish off every request's critical path.
type traceRing struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64
}

func (r *traceRing) put(t *Trace) {
	seq := r.pos.Add(1)
	t.Seq = seq // publish owns the trace; stamped before it becomes visible
	r.slots[(seq-1)%uint64(len(r.slots))].Store(t)
}

func (r *traceRing) snapshot() []*Trace {
	pos := r.pos.Load()
	n := uint64(len(r.slots))
	out := make([]*Trace, 0, min(pos, n))
	for k := uint64(0); k < n && k < pos; k++ {
		if t := r.slots[(pos-1-k)%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// TracesHandler serves GET /debug/traces: the ring's completed traces as
// JSON, newest first. Query parameters filter the view: route= keeps one
// route pattern, min_ms= keeps traces at least that long, limit= caps the
// count, and since_seq= keeps only traces published after that ring
// sequence. The response carries max_seq — the highest sequence assigned so
// far — so a repeated scraper can loop `since_seq = max_seq` and read every
// trace exactly once, regardless of filters (up to ring overwrite under
// sustained overload).
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		q := r.URL.Query()
		route := q.Get("route")
		var minDur time.Duration
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "min_ms must be a number", http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		var sinceSeq uint64
		if v := q.Get("since_seq"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "since_seq must be a non-negative integer", http.StatusBadRequest)
				return
			}
			sinceSeq = n
		}
		limit := len(traces)
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		out := make([]*Trace, 0, min(limit, len(traces)))
		for _, tr := range traces {
			if len(out) >= limit {
				break
			}
			if tr.Seq <= sinceSeq {
				continue
			}
			if route != "" && tr.Route != route {
				continue
			}
			if time.Duration(tr.DurationNS) < minDur {
				continue
			}
			out = append(out, tr)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{ //nolint:errcheck // response committed
			"count":   len(out),
			"max_seq": t.LastSeq(),
			"traces":  out,
		})
	})
}
