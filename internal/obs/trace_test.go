package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name        string
		h           string
		ok, sampled bool
	}{
		{"valid sampled", valid, true, true},
		{"valid unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true, false},
		{"empty", "", false, false},
		{"short", valid[:54], false, false},
		{"truncated ids", "00-4bf92f35-00f067aa-01", false, false},
		{"bad separator", strings.Replace(valid, "-", "_", 1), false, false},
		{"version ff", "ff" + valid[2:], false, false},
		{"version not hex", "0x" + valid[2:], false, false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false, false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false, false},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false, false},
		{"bad flags", valid[:53] + "zz", false, false},
		{"v00 with trailing field", valid + "-extra", false, false},
		{"v00 with trailing junk", valid + "x", false, false},
		{"future version exact length", "01" + valid[2:], true, true},
		{"future version extra field", "01" + valid[2:] + "-extra", true, true},
		{"future version trailing junk", "01" + valid[2:] + "x", false, false},
		{"flags other bits set", valid[:53] + "03", true, true},
		{"flags other bits unsampled", valid[:53] + "02", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tid, parent, sampled, ok := ParseTraceparent(tc.h)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.h, ok, tc.ok)
			}
			if !ok {
				return
			}
			if sampled != tc.sampled {
				t.Errorf("sampled = %v, want %v", sampled, tc.sampled)
			}
			if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
				t.Errorf("trace ID = %s", tid.String())
			}
			if parent.String() != "00f067aa0ba902b7" {
				t.Errorf("parent ID = %s", parent.String())
			}
		})
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := newTraceID(), newSpanID()
	h := FormatTraceparent(tid, sid, true)
	gotT, gotS, sampled, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid || !sampled {
		t.Fatalf("round trip failed: %q -> (%v %v %v %v)", h, gotT, gotS, sampled, ok)
	}
	if _, _, sampled, ok = ParseTraceparent(FormatTraceparent(tid, sid, false)); !ok || sampled {
		t.Fatalf("unsampled round trip: ok=%v sampled=%v", ok, sampled)
	}
}

func TestStartRequestJoinsInbound(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0}) // minted traces never sample
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, span, echo, sampled := tr.StartRequest(context.Background(), in, "/r", "req-1")
	if !sampled || span == nil {
		t.Fatalf("inbound sampled traceparent must override SampleRate=0")
	}
	if got := span.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not adopted: %s", got)
	}
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(echo, "-01") {
		t.Fatalf("echo %q must keep the inbound trace ID and sampled flag", echo)
	}
	if SpanFromContext(ctx) != span {
		t.Fatal("context must carry the root span")
	}
	span.End()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].Spans[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root must record the remote parent, got %q", traces[0].Spans[0].ParentID)
	}
}

func TestStartRequestUnsampledInbound(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1}) // minted traces always sample
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	ctx, span, echo, sampled := tr.StartRequest(context.Background(), in, "/r", "req-1")
	if sampled || span != nil {
		t.Fatal("an unsampled inbound traceparent must suppress recording even at SampleRate=1")
	}
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(echo, "-00") {
		t.Fatalf("echo %q must propagate the inbound IDs with the unsampled flag", echo)
	}
	// The whole downstream pipeline must stay a no-op on the unsampled ctx.
	cctx, child := StartSpan(ctx, "child")
	if child != nil || cctx != ctx {
		t.Fatal("StartSpan on an unsampled context must return (ctx, nil)")
	}
	child.SetAttr("k", "v")
	child.End()
	if len(tr.Traces()) != 0 {
		t.Fatal("nothing may publish for an unsampled request")
	}
}

func TestStartRequestMalformedMints(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	_, span, echo, sampled := tr.StartRequest(context.Background(), "garbage", "/r", "req-1")
	if !sampled || span == nil {
		t.Fatal("malformed traceparent must fall back to minting")
	}
	if strings.Contains(echo, "garbage") {
		t.Fatalf("echo %q must be a fresh canonical header", echo)
	}
	if tid, _, s, ok := ParseTraceparent(echo); !ok || !s || tid != span.TraceID() {
		t.Fatalf("echo %q must carry the minted sampled IDs", echo)
	}
}

func TestSpanTreePublish(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartRoot(context.Background(), "job")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetAttr("k", "v")
	grand.End()
	child.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	// Children end before the root, so the root is the final record.
	if got.Spans[2].Name != "job" || got.Spans[2].ParentID != "" {
		t.Fatalf("root must be last and parentless, got %+v", got.Spans[2])
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["child"].ParentID != byName["job"].SpanID {
		t.Error("child must parent on the root")
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Error("grandchild must parent on the child")
	}
	if a := byName["grandchild"].Attrs; len(a) != 1 || a[0].Key != "k" || a[0].Value != "v" {
		t.Errorf("grandchild attrs = %+v", a)
	}
	for _, s := range got.Spans {
		if s.DurationNS > got.DurationNS {
			t.Errorf("span %q duration %d exceeds trace duration %d", s.Name, s.DurationNS, got.DurationNS)
		}
	}
}

func TestLateChildDropped(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartRoot(context.Background(), "job")
	_, child := StartSpan(ctx, "straggler")
	root.End()
	child.End() // after the trace published; must not mutate it
	traces := tr.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("straggler must be dropped, got %d traces / %d spans",
			len(traces), len(traces[0].Spans))
	}
}

func TestSlowTraceLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(TracerConfig{SlowThreshold: time.Nanosecond, Logger: logger})
	ctx, root := tr.StartRoot(context.Background(), "slow-job")
	time.Sleep(time.Millisecond)
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, "route=slow-job") {
		t.Fatalf("slow trace warning missing: %q", out)
	}
	if !strings.Contains(out, "trace_id="+root.TraceID().String()) {
		t.Fatalf("slow trace warning must carry the trace ID: %q", out)
	}
	// The warning names where the time went: top spans by self-time, so the
	// log line alone localizes the slowness after the ring has wrapped.
	if !strings.Contains(out, "top_self_time=") || !strings.Contains(out, "slow-job=") {
		t.Fatalf("slow trace warning must carry top_self_time with the root span: %q", out)
	}
	if !strings.Contains(out, "child=") {
		t.Fatalf("top_self_time must include the child span: %q", out)
	}

	// Under threshold: silent.
	buf.Reset()
	fast := NewTracer(TracerConfig{SlowThreshold: time.Hour, Logger: logger})
	_, r2 := fast.StartRoot(context.Background(), "fast-job")
	r2.End()
	if buf.Len() != 0 {
		t.Fatalf("fast trace must not log: %q", buf.String())
	}
}

func TestNilTracerAndNilSpan(t *testing.T) {
	var tr *Tracer
	ctx, span, echo, sampled := tr.StartRequest(context.Background(), "", "/r", "id")
	if span != nil || echo != "" || sampled {
		t.Fatal("nil tracer must disable everything")
	}
	if tr.Traces() != nil {
		t.Fatal("nil tracer snapshot must be nil")
	}
	if _, s := tr.StartRoot(ctx, "x"); s != nil {
		t.Fatal("nil tracer StartRoot must return nil span")
	}
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.End()
	if !nilSpan.TraceID().IsZero() {
		t.Fatal("nil span trace ID must be zero")
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("TraceIDFrom on untraced ctx = %q", got)
	}
}

// TestRingConcurrent exercises concurrent publishes and snapshots; run with
// -race it verifies the ring's atomics carry all synchronization.
func TestRingConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 8})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartRoot(context.Background(), "burst")
				_, child := StartSpan(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, got := range tr.Traces() {
				if got.TraceID == "" || len(got.Spans) == 0 {
					t.Error("snapshot returned an incomplete trace")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := len(tr.Traces()); got != 8 {
		t.Fatalf("ring must hold exactly its capacity, got %d", got)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	for _, route := range []string{"/a", "/a", "/b"} {
		_, root := tr.StartRoot(context.Background(), route)
		root.End()
	}

	get := func(url string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
		rec := httptest.NewRecorder()
		tr.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body map[string]json.RawMessage
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("GET %s: bad JSON: %v", url, err)
			}
		}
		return rec, body
	}
	count := func(body map[string]json.RawMessage) int {
		var n int
		if err := json.Unmarshal(body["count"], &n); err != nil {
			t.Fatal(err)
		}
		return n
	}

	if _, body := get("/debug/traces"); count(body) != 3 {
		t.Errorf("unfiltered count = %d, want 3", count(body))
	}
	if _, body := get("/debug/traces?route=/a"); count(body) != 2 {
		t.Errorf("route filter count = %d, want 2", count(body))
	}
	if _, body := get("/debug/traces?limit=1"); count(body) != 1 {
		t.Errorf("limit count = %d, want 1", count(body))
	}
	if _, body := get("/debug/traces?min_ms=60000"); count(body) != 0 {
		t.Errorf("min_ms filter count = %d, want 0", count(body))
	}
	if rec, _ := get("/debug/traces?min_ms=abc"); rec.Code != 400 {
		t.Errorf("bad min_ms status = %d, want 400", rec.Code)
	}
	if rec, _ := get("/debug/traces?limit=-1"); rec.Code != 400 {
		t.Errorf("bad limit status = %d, want 400", rec.Code)
	}
}

// TestTracesHandlerSinceSeq locks the incremental-consumption contract of
// GET /debug/traces: every published trace carries a monotonically
// increasing ring sequence, the response advertises max_seq, and
// ?since_seq=N returns exactly the traces published after N — so a poller
// can tail the ring without re-reading (or missing) completed traces.
func TestTracesHandlerSinceSeq(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 16})
	for i := 0; i < 5; i++ {
		_, root := tr.StartRoot(context.Background(), "/seq")
		root.End()
	}

	get := func(url string) (int, tracesPage) {
		rec := httptest.NewRecorder()
		tr.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var page tracesPage
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatalf("GET %s: bad JSON: %v", url, err)
			}
		}
		return rec.Code, page
	}

	_, page := get("/debug/traces")
	if page.Count != 5 || len(page.Traces) != 5 {
		t.Fatalf("unfiltered: count=%d traces=%d, want 5", page.Count, len(page.Traces))
	}
	if page.MaxSeq != 5 {
		t.Errorf("max_seq = %d, want 5", page.MaxSeq)
	}
	seen := make(map[uint64]bool)
	for _, tr := range page.Traces {
		if tr.Seq < 1 || tr.Seq > page.MaxSeq || seen[tr.Seq] {
			t.Errorf("seq %d out of (0, %d] or duplicated", tr.Seq, page.MaxSeq)
		}
		seen[tr.Seq] = true
	}

	if _, page = get("/debug/traces?since_seq=3"); page.Count != 2 {
		t.Errorf("since_seq=3 count = %d, want 2", page.Count)
	}
	for _, tr := range page.Traces {
		if tr.Seq <= 3 {
			t.Errorf("since_seq=3 returned seq %d", tr.Seq)
		}
	}
	if _, page = get("/debug/traces?since_seq=5"); page.Count != 0 || page.MaxSeq != 5 {
		t.Errorf("fully-caught-up cursor: count=%d max_seq=%d, want 0 and 5", page.Count, page.MaxSeq)
	}

	// New publishes advance max_seq past a held cursor.
	_, root := tr.StartRoot(context.Background(), "/seq")
	root.End()
	if _, page = get("/debug/traces?since_seq=5"); page.Count != 1 || page.MaxSeq != 6 {
		t.Errorf("after publish: count=%d max_seq=%d, want 1 and 6", page.Count, page.MaxSeq)
	}

	if code, _ := get("/debug/traces?since_seq=x"); code != 400 {
		t.Errorf("bad since_seq status = %d, want 400", code)
	}
	if code, _ := get("/debug/traces?since_seq=-1"); code != 400 {
		t.Errorf("negative since_seq status = %d, want 400", code)
	}

	// Filters compose: route + since_seq.
	if _, page = get("/debug/traces?route=/seq&since_seq=4"); page.Count != 2 {
		t.Errorf("route+since_seq count = %d, want 2", page.Count)
	}
}

// tracesPage mirrors the /debug/traces response envelope.
type tracesPage struct {
	Count  int    `json:"count"`
	MaxSeq uint64 `json:"max_seq"`
	Traces []struct {
		Seq uint64 `json:"seq"`
	} `json:"traces"`
}
