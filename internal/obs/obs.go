// Package obs is the observability substrate of the serving stack: a
// stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms, with Prometheus text exposition and an expvar
// mirror), structured request logging over log/slog with per-request IDs,
// an HTTP middleware that instruments every endpoint, and an ops mux
// bundling /metrics, /healthz and net/http/pprof.
//
// The layering rule is that obs knows nothing about the layers it
// observes: internal/store and internal/feed declare their own narrow
// Telemetry interfaces and obs provides sinks (StoreSink, FeedSink) that
// satisfy them structurally, so the storage layers never import HTTP and
// the whole substrate can be switched off by passing a nil registry —
// every instrument and sink in this package is nil-receiver safe and
// degrades to a no-op, keeping the uninstrumented hot paths at their PR 6
// cost.
//
// Naming follows the Prometheus conventions (see DESIGN.md §11): every
// series is prefixed "evorec_", cumulative counters end in "_total",
// latency histograms in "_seconds", and label cardinality is bounded by
// construction (routes are mux patterns, never raw URLs; status codes are
// collapsed to classes).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of instruments. The zero value is not
// usable; NewRegistry constructs one. All methods are safe for concurrent
// use, and every Counter/Gauge/... accessor is get-or-create: asking twice
// for the same name returns the same instrument, so independently
// constructed sinks share series instead of colliding.
type Registry struct {
	mu    sync.Mutex
	names []string // registration order; exposition sorts
	insts map[string]instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{insts: make(map[string]instrument)}
}

// instrument is the exposition contract every metric family implements.
type instrument interface {
	// kind is the TYPE line value: "counter", "gauge" or "histogram".
	kind() string
	// help is the HELP line text.
	help() string
	// series appends the family's sample lines (name{labels} value) in
	// deterministic order. withEx asks histogram buckets to attach their
	// latest exemplar; other instruments ignore it.
	series(name string, out []sample, withEx bool) []sample
}

// sample is one exposition line before formatting.
type sample struct {
	// suffix extends the family name ("_bucket", "_sum", "_count", "").
	suffix string
	// labels is the rendered {…} block including braces, or "".
	labels string
	// value is the sample value.
	value float64
	// exemplar is the pre-rendered exemplar tail (" # {trace_id=...} v"),
	// or "" — emitted only by the opt-in exemplar exposition.
	exemplar string
}

// get returns the named instrument, creating it with mk on first use. A
// name reused with a different instrument kind panics: two call sites
// disagreeing on what a series means is a programming error no fallback
// can repair.
func (r *Registry) get(name string, mk func() instrument) instrument {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		want := mk()
		if in.kind() != want.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, want.kind(), in.kind()))
		}
		return in
	}
	in := mk()
	r.insts[name] = in
	r.names = append(r.names, name)
	return in
}

// Counter returns the named monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument { return &Counter{h: help} }).(*Counter)
}

// Gauge returns the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument { return &Gauge{h: help} }).(*Gauge)
}

// Histogram returns the named fixed-bucket histogram. buckets are upper
// bounds in increasing order; nil means DefBuckets. The bucket layout is
// fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument { return newHistogram(help, buckets) }).(*Histogram)
}

// CounterVec returns the named counter family partitioned by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument {
		return &CounterVec{h: help, labels: labels, m: make(map[string]*Counter)}
	}).(*CounterVec)
}

// GaugeVec returns the named gauge family partitioned by labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument {
		return &GaugeVec{h: help, labels: labels, m: make(map[string]*Gauge)}
	}).(*GaugeVec)
}

// HistogramVec returns the named histogram family partitioned by labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return r.get(name, func() instrument {
		return &HistogramVec{h: help, buckets: buckets, labels: labels, m: make(map[string]*Histogram)}
	}).(*HistogramVec)
}

// families returns (name, instrument) pairs sorted by name under the lock.
func (r *Registry) families() []struct {
	name string
	inst instrument
} {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	insts := make([]instrument, len(names))
	sort.Strings(names)
	for i, n := range names {
		insts[i] = r.insts[n]
	}
	r.mu.Unlock()
	out := make([]struct {
		name string
		inst instrument
	}, len(names))
	for i := range names {
		out[i] = struct {
			name string
			inst instrument
		}{names[i], insts[i]}
	}
	return out
}

// labelBlock renders a sorted, escaped {name="value",...} block. keys and
// values are parallel; an empty key set renders "".
func labelBlock(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, len(keys))
	for i := range keys {
		kvs[i] = kv{keys[i], values[i]}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
