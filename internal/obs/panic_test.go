package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWrapPanicContainment locks the containment contract: a panicking
// handler yields a 500 (not a dead connection), moves the per-route panic
// counter, logs the panic with its stack, and leaves the middleware's
// in-flight accounting balanced so the server keeps serving afterwards.
func TestWrapPanicContainment(t *testing.T) {
	reg := NewRegistry()
	var buf strings.Builder
	m := NewHTTPMetrics(reg, NewLogger(&buf, "error"), nil)
	mux := http.NewServeMux()
	mux.Handle("/boom", m.Wrap("/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})))
	mux.Handle("/ok", m.Wrap("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	// The server is still alive: a healthy route serves right after.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy route after a panic answered %d, want 200", rec.Code)
	}

	snap := reg.Snapshot()
	if got := snap[`evorec_http_panics_total{route="/boom"}`]; got != 1 {
		t.Errorf("panic counter = %v, want 1", got)
	}
	if got := snap[`evorec_http_requests_total{class="5xx",method="GET",route="/boom"}`]; got != 1 {
		t.Errorf("5xx counter for the panicking route = %v, want 1", got)
	}
	if got := snap["evorec_http_in_flight"]; got != 0 {
		t.Errorf("in-flight after containment = %v, want 0 (leaked decrement)", got)
	}
	log := buf.String()
	if !strings.Contains(log, "kaboom") || !strings.Contains(log, "stack") {
		t.Errorf("panic log lacks the panic value or stack: %q", log)
	}
}

// TestWrapPanicAbortHandler verifies http.ErrAbortHandler keeps its
// net/http meaning: it is re-raised (the server's own recovery eats it as
// the standard abort-the-response signal) and never counted as a panic.
func TestWrapPanicAbortHandler(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil, nil)
	h := m.Wrap("/abort", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler { //nolint:errorlint // sentinel identity is the contract
				t.Fatalf("recovered %v, want http.ErrAbortHandler re-raised", r)
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	}()
	snap := reg.Snapshot()
	if got := snap[`evorec_http_panics_total{route="/abort"}`]; got != 0 {
		t.Errorf("abort sentinel counted as a panic: %v", got)
	}
	if got := snap["evorec_http_in_flight"]; got != 0 {
		t.Errorf("in-flight after abort = %v, want 0", got)
	}
}
