package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWrapRequestID covers both halves of request-ID propagation: an
// incoming X-Request-Id is honored (echoed on the response, visible in the
// handler's context), and a missing one is minted.
func TestWrapRequestID(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil, nil)
	var seen string
	h := m.Wrap("/v1/test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	}))

	req := httptest.NewRequest("GET", "/v1/test", nil)
	req.Header.Set(RequestIDHeader, "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "upstream-42" {
		t.Errorf("context request ID = %q, want upstream-42", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-42" {
		t.Errorf("echoed request ID = %q, want upstream-42", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/test", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" || minted != seen {
		// seen was re-assigned by the second request's handler run.
		t.Errorf("minted ID %q not propagated to context (%q)", minted, seen)
	}
	if other := NewRequestID(); other == minted {
		t.Errorf("request IDs not unique: %q repeated", minted)
	}
}

// TestWrapStatusClasses locks the status-class counter: each response
// status lands in its class child, defaulting to 2xx when the handler
// writes a body without an explicit WriteHeader.
func TestWrapStatusClasses(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil, nil)
	mux := http.NewServeMux()
	mux.Handle("/ok", m.Wrap("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "implicit 200") // no WriteHeader: net/http defaults
	})))
	mux.Handle("/missing", m.Wrap("/missing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})))
	mux.Handle("/busy", m.Wrap("/busy", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})))
	for path, n := range map[string]int{"/ok": 3, "/missing": 2, "/busy": 1} {
		for i := 0; i < n; i++ {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		}
	}
	snap := reg.Snapshot()
	for key, want := range map[string]float64{
		`evorec_http_requests_total{class="2xx",method="GET",route="/ok"}`:      3,
		`evorec_http_requests_total{class="4xx",method="GET",route="/missing"}`: 2,
		`evorec_http_requests_total{class="5xx",method="GET",route="/busy"}`:    1,
	} {
		if snap[key] != want {
			t.Errorf("snapshot[%s] = %v, want %v", key, snap[key], want)
		}
	}
	if got := snap[`evorec_http_response_bytes_total{route="/ok"}`]; got != 3*float64(len("implicit 200")) {
		t.Errorf("response bytes = %v, want %v", got, 3*len("implicit 200"))
	}
	if got := snap["evorec_http_in_flight"]; got != 0 {
		t.Errorf("in-flight after all responses = %v, want 0", got)
	}
}

// TestWrapConcurrent hammers one instrumented route from many goroutines
// (the -race CI job runs this under the race detector) and asserts the
// histogram's bucket assignment stays conserved: every request lands in
// exactly one bucket, the cumulative +Inf bucket, the count and the
// request counter all agree.
func TestWrapConcurrent(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, NewLogger(&strings.Builder{}, "error"), nil)
	h := m.Wrap("/v1/datasets/{name}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/datasets/demo", nil))
			}
		}()
	}
	wg.Wait()
	const total = workers * perWorker
	snap := reg.Snapshot()
	if got := snap[`evorec_http_request_seconds_count{route="/v1/datasets/{name}"}`]; got != total {
		t.Errorf("latency count = %v, want %d", got, total)
	}
	if got := snap[`evorec_http_request_seconds_bucket{le="+Inf",route="/v1/datasets/{name}"}`]; got != total {
		t.Errorf("+Inf bucket = %v, want %d (every observation must land in a bucket)", got, total)
	}
	if got := snap[`evorec_http_requests_total{class="2xx",method="GET",route="/v1/datasets/{name}"}`]; got != total {
		t.Errorf("request counter = %v, want %d", got, total)
	}
	// Cumulative buckets must be monotone nondecreasing up to +Inf.
	prev := 0.0
	for _, b := range DefBuckets {
		key := fmt.Sprintf(`evorec_http_request_seconds_bucket{le=%q,route="/v1/datasets/{name}"}`, formatFloat(b))
		if v, ok := snap[key]; !ok {
			t.Errorf("missing bucket %s", key)
		} else if v < prev {
			t.Errorf("bucket %s = %v < previous %v (not cumulative)", key, v, prev)
		} else {
			prev = v
		}
	}
}

// TestWrapNil locks the off switch: with neither registry nor logger the
// middleware is a nil receiver and hands handlers back unchanged.
func TestWrapNil(t *testing.T) {
	m := NewHTTPMetrics(nil, nil, nil)
	if m != nil {
		t.Fatal("NewHTTPMetrics(nil, nil, nil) != nil")
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := m.Wrap("/x", h); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", h) {
		t.Error("nil middleware did not return the handler unchanged")
	}
}

// TestRouteLabel locks the pattern -> label derivation.
func TestRouteLabel(t *testing.T) {
	for pattern, want := range map[string]string{
		"GET /v1/datasets/{name}": "/v1/datasets/{name}",
		"PUT /v1/x":               "/v1/x",
		"/bare":                   "/bare",
		// Parameterized multi-segment patterns keep every wildcard.
		"POST /v1/datasets/{name}/versions/{id}": "/v1/datasets/{name}/versions/{id}",
		"GET /v1/datasets/{name}/feed/{id}":      "/v1/datasets/{name}/feed/{id}",
		// Unknown/degenerate patterns pass through unchanged: no method
		// prefix to strip, or a first token that is itself a path.
		"":                     "",
		"GET":                  "GET",
		"/a/b c/d":             "/a/b c/d",
		"OPTIONS {$}":          "{$}",
		"GET example.com/path": "example.com/path",
	} {
		if got := RouteLabel(pattern); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", pattern, got, want)
		}
	}
}

// TestParseBuckets pins the -latency-buckets grammar: comma-separated
// positive finite seconds in strict ascent, +Inf implicit.
func TestParseBuckets(t *testing.T) {
	got, err := ParseBuckets("0.005, 0.05,0.5,2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.005, 0.05, 0.5, 2}
	if len(got) != len(want) {
		t.Fatalf("ParseBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseBuckets = %v, want %v", got, want)
		}
	}
	if b, err := ParseBuckets("0.25"); err != nil || len(b) != 1 || b[0] != 0.25 {
		t.Errorf("single bound: %v, %v", b, err)
	}
	for _, bad := range []string{
		"",         // no bounds at all
		"0.1,,0.5", // empty element
		"0.1,abc",  // not a number
		"0.1,+Inf", // +Inf is implicit, never listed
		"NaN",      // not a usable bound
		"0,0.1",    // bounds must be positive
		"-0.1,0.5", // negative
		"0.1,0.1",  // must strictly ascend
		"0.5,0.1",  // descending
	} {
		if _, err := ParseBuckets(bad); err == nil {
			t.Errorf("ParseBuckets(%q) accepted an invalid schedule", bad)
		}
	}
}

// TestCustomLatencyBuckets threads a custom schedule end to end: the
// request-latency histogram exposes exactly the configured le bounds (plus
// +Inf), not the default schedule.
func TestCustomLatencyBuckets(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetricsBuckets(reg, nil, nil, []float64{0.001, 1})
	h := m.Wrap("/v1/custom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/custom", nil))

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`evorec_http_request_seconds_bucket{le="0.001",route="/v1/custom"}`,
		`evorec_http_request_seconds_bucket{le="1",route="/v1/custom"}`,
		`evorec_http_request_seconds_bucket{le="+Inf",route="/v1/custom"} 1`,
		`evorec_http_request_seconds_count{route="/v1/custom"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(body, `le="0.005"`) {
		t.Error("default bucket schedule leaked into a custom-bucket histogram")
	}
}
