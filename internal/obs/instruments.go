package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout (seconds): wide
// enough to catch a stalled fsync, fine enough to resolve a microsecond
// scoring path.
var DefBuckets = []float64{
	0.000_01, 0.000_05, 0.000_1, 0.000_5,
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10,
}

// SizeBuckets is a power-of-two layout for counts and sizes (batch sizes,
// affected-subscriber counts).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonic float counter. All methods are safe for
// concurrent use and nil-receiver safe (a nil counter is a no-op), so
// optional instrumentation costs one predictable branch when disabled.
type Counter struct {
	h    string
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) kind() string { return "counter" }
func (c *Counter) help() string { return c.h }
func (c *Counter) series(name string, out []sample, withEx bool) []sample {
	return append(out, sample{value: c.Value()})
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a settable value. Nil-receiver safe like Counter.
type Gauge struct {
	h    string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) help() string { return g.h }
func (g *Gauge) series(name string, out []sample, withEx bool) []sample {
	return append(out, sample{value: g.Value()})
}

// addFloat CAS-adds a float64 delta onto atomic bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram is a fixed-bucket cumulative histogram (counts per upper
// bound, plus sum and count). Observations are lock-free; exposition reads
// may be slightly torn across buckets, which Prometheus scraping
// tolerates by design. Nil-receiver safe.
type Histogram struct {
	h      string
	bounds []float64 // upper bounds, increasing; +Inf implicit
	counts []atomic.Uint64
	ex     []atomic.Pointer[Exemplar] // latest exemplar per bucket
	sum    atomic.Uint64              // float64 bits
	count  atomic.Uint64
}

// Exemplar links one observed value to the trace that produced it, so a
// /metrics latency bucket can point at the timeline in /debug/traces that
// landed there. Each bucket keeps only its most recent exemplar.
type Exemplar struct {
	TraceID string
	Value   float64
}

func newHistogram(help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &Histogram{
		h: help, bounds: buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// replaces the landing bucket's exemplar with (traceID, v). The store is a
// single atomic pointer swap, so traced observations cost one allocation
// over Observe and untraced ones (traceID == "") cost nothing extra.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the observation count.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) help() string { return h.h }
func (h *Histogram) series(name string, out []sample, withEx bool) []sample {
	return h.seriesLabeled(nil, nil, out, withEx)
}

// exemplarTail renders bucket i's exemplar in the OpenMetrics form
// (" # {trace_id=\"…\"} value"), or "".
func (h *Histogram) exemplarTail(i int, withEx bool) string {
	if !withEx {
		return ""
	}
	e := h.ex[i].Load()
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + e.TraceID + `"} ` + formatFloat(e.Value)
}

// seriesLabeled renders the histogram's lines with extra labels (the vec
// case); the le label is appended per bucket.
func (h *Histogram) seriesLabeled(keys, values []string, out []sample, withEx bool) []sample {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, sample{
			suffix: "_bucket",
			labels: labelBlock(append(append([]string(nil), keys...), "le"),
				append(append([]string(nil), values...), formatFloat(b))),
			value:    float64(cum),
			exemplar: h.exemplarTail(i, withEx),
		})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, sample{
		suffix: "_bucket",
		labels: labelBlock(append(append([]string(nil), keys...), "le"),
			append(append([]string(nil), values...), "+Inf")),
		value:    float64(cum),
		exemplar: h.exemplarTail(len(h.bounds), withEx),
	})
	base := labelBlock(keys, values)
	out = append(out, sample{suffix: "_sum", labels: base, value: h.Sum()})
	out = append(out, sample{suffix: "_count", labels: base, value: float64(h.count.Load())})
	return out
}

// ---------------------------------------------------------------------------
// Label vecs

// CounterVec is a counter family partitioned by a fixed label set.
type CounterVec struct {
	h      string
	labels []string
	mu     sync.RWMutex
	m      map[string]*Counter
	order  []string
	vals   map[string][]string
}

// With returns the child counter for the given label values (one per
// declared label, positional). Nil-receiver safe: a nil vec returns a nil
// counter, itself a no-op.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := joinKey(values)
	v.mu.RLock()
	c, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[key]; ok {
		return c
	}
	c = &Counter{}
	v.m[key] = c
	v.order = append(v.order, key)
	if v.vals == nil {
		v.vals = make(map[string][]string)
	}
	v.vals[key] = append([]string(nil), values...)
	return c
}

func (v *CounterVec) kind() string { return "counter" }
func (v *CounterVec) help() string { return v.h }
func (v *CounterVec) series(name string, out []sample, withEx bool) []sample {
	v.mu.RLock()
	keys := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		v.mu.RLock()
		c, vals := v.m[key], v.vals[key]
		v.mu.RUnlock()
		out = append(out, sample{labels: labelBlock(v.labels, vals), value: c.Value()})
	}
	return out
}

// GaugeVec is a gauge family partitioned by a fixed label set.
type GaugeVec struct {
	h      string
	labels []string
	mu     sync.RWMutex
	m      map[string]*Gauge
	order  []string
	vals   map[string][]string
}

// With returns the child gauge for the given label values. Nil-receiver
// safe: a nil vec returns a nil gauge, itself a no-op.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := joinKey(values)
	v.mu.RLock()
	g, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.m[key]; ok {
		return g
	}
	g = &Gauge{}
	v.m[key] = g
	v.order = append(v.order, key)
	if v.vals == nil {
		v.vals = make(map[string][]string)
	}
	v.vals[key] = append([]string(nil), values...)
	return g
}

func (v *GaugeVec) kind() string { return "gauge" }
func (v *GaugeVec) help() string { return v.h }
func (v *GaugeVec) series(name string, out []sample, withEx bool) []sample {
	v.mu.RLock()
	keys := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		v.mu.RLock()
		g, vals := v.m[key], v.vals[key]
		v.mu.RUnlock()
		out = append(out, sample{labels: labelBlock(v.labels, vals), value: g.Value()})
	}
	return out
}

// HistogramVec is a histogram family partitioned by a fixed label set.
type HistogramVec struct {
	h       string
	buckets []float64
	labels  []string
	mu      sync.RWMutex
	m       map[string]*Histogram
	order   []string
	vals    map[string][]string
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := joinKey(values)
	v.mu.RLock()
	h, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.m[key]; ok {
		return h
	}
	h = newHistogram("", v.buckets)
	v.m[key] = h
	v.order = append(v.order, key)
	if v.vals == nil {
		v.vals = make(map[string][]string)
	}
	v.vals[key] = append([]string(nil), values...)
	return h
}

func (v *HistogramVec) kind() string { return "histogram" }
func (v *HistogramVec) help() string { return v.h }
func (v *HistogramVec) series(name string, out []sample, withEx bool) []sample {
	v.mu.RLock()
	keys := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		v.mu.RLock()
		h, vals := v.m[key], v.vals[key]
		v.mu.RUnlock()
		out = h.seriesLabeled(v.labels, vals, out, withEx)
	}
	return out
}

// joinKey builds the child key from label values (\xff never appears in
// route patterns or status classes).
func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}
