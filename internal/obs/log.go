package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger builds the service's structured logger: slog text lines on w
// at the given level ("debug", "info", "warn", "error"; unknown levels
// fall back to info). JSON output is a handler swap away; text keeps the
// smoke tests and a human tail readable.
func NewLogger(w io.Writer, level string) *slog.Logger {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv}))
}

// requestIDKey is the context key request IDs travel under.
type requestIDKey struct{}

// reqPrefix is a per-process random prefix so IDs from different service
// instances never collide in aggregated logs; reqSeq makes each ID unique
// within the process.
var (
	reqPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

// NewRequestID mints a process-unique request ID.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
