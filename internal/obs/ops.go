package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the static identity /healthz reports. FromBuildInfo fills
// it from the binary's embedded build metadata.
type BuildInfo struct {
	// Service names the serving binary ("evorec").
	Service string `json:"service"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision baked in at build time ("" outside a
	// checkout).
	Revision string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// FromBuildInfo extracts the binary's build identity.
func FromBuildInfo(service string) BuildInfo {
	bi := BuildInfo{Service: service, GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.Revision = s.Value
			case "vcs.modified":
				bi.Modified = s.Value == "true"
			}
		}
	}
	return bi
}

// HealthHandler serves GET /healthz: 200 with the build identity, uptime,
// and whatever dynamic fields the caller supplies (dataset count, ...).
// It is a liveness check — it answers as long as the process serves HTTP —
// not a readiness probe into the stores.
func HealthHandler(info BuildInfo, dynamic func() map[string]any) http.Handler {
	start := time.Now()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":         "ok",
			"service":        info.Service,
			"go_version":     info.GoVersion,
			"uptime_seconds": time.Since(start).Seconds(),
		}
		if info.Revision != "" {
			body["revision"] = info.Revision
			body["modified"] = info.Modified
		}
		if dynamic != nil {
			for k, v := range dynamic() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) //nolint:errcheck // the response is already committed
	})
}

// NewOpsMux bundles the operator surface on one mux, meant for a separate
// loopback listener (`evorec serve -ops-addr`), so profiling and metrics
// never share a port — or an exposure decision — with the public API:
//
//	GET /metrics        Prometheus text exposition
//	GET /healthz        liveness + build info
//	GET /debug/pprof/*  net/http/pprof profiles
//	GET /debug/vars     expvar (includes the registry mirror)
func NewOpsMux(reg *Registry, info BuildInfo, dynamic func() map[string]any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /healthz", HealthHandler(info, dynamic))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}
