package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the static identity /healthz reports. FromBuildInfo fills
// it from the binary's embedded build metadata.
type BuildInfo struct {
	// Service names the serving binary ("evorec").
	Service string `json:"service"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision baked in at build time ("" outside a
	// checkout).
	Revision string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// FromBuildInfo extracts the binary's build identity.
func FromBuildInfo(service string) BuildInfo {
	bi := BuildInfo{Service: service, GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.Revision = s.Value
			case "vcs.modified":
				bi.Modified = s.Value == "true"
			}
		}
	}
	return bi
}

// HealthHandler serves GET /healthz: 200 with the build identity, uptime,
// and whatever dynamic fields the caller supplies (dataset count, ...).
// It is a liveness check — it answers as long as the process serves HTTP —
// not a readiness probe into the stores.
func HealthHandler(info BuildInfo, dynamic func() map[string]any) http.Handler {
	start := time.Now()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":         "ok",
			"service":        info.Service,
			"go_version":     info.GoVersion,
			"uptime_seconds": time.Since(start).Seconds(),
		}
		if info.Revision != "" {
			body["revision"] = info.Revision
			body["modified"] = info.Modified
		}
		if dynamic != nil {
			for k, v := range dynamic() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) //nolint:errcheck // the response is already committed
	})
}

// ReadyHandler serves GET /readyz: the readiness probe /healthz is not.
// check reports whether the service can usefully answer right now plus
// detail fields (in-flight replays, checkpoints, drains); not-ready
// renders 503 so a load balancer parks traffic during WAL replay or a
// drain without killing the process the way a failing liveness probe
// would. A nil check is always ready — liveness and readiness coincide
// for services without warm-up state.
func ReadyHandler(check func() (bool, map[string]any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ready, detail := true, map[string]any(nil)
		if check != nil {
			ready, detail = check()
		}
		body := map[string]any{"status": "ready"}
		status := http.StatusOK
		if !ready {
			body["status"] = "unavailable"
			status = http.StatusServiceUnavailable
		}
		for k, v := range detail {
			body[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) //nolint:errcheck // the response is already committed
	})
}

// OpsConfig parameterizes the operator mux. Every field is optional: a nil
// Registry serves an empty exposition, a nil Tracer omits /debug/traces,
// and a nil Ready check makes /readyz mirror liveness.
type OpsConfig struct {
	// Registry backs GET /metrics.
	Registry *Registry
	// Tracer backs GET /debug/traces (omitted when nil).
	Tracer *Tracer
	// Info is the build identity /healthz reports.
	Info BuildInfo
	// Dynamic supplies live /healthz fields (dataset count, ...).
	Dynamic func() map[string]any
	// Ready backs GET /readyz.
	Ready func() (bool, map[string]any)
}

// NewOpsMux bundles the operator surface with the given registry, build
// identity and dynamic health fields; OpsMux is the full-config variant.
func NewOpsMux(reg *Registry, info BuildInfo, dynamic func() map[string]any) *http.ServeMux {
	return OpsMux(OpsConfig{Registry: reg, Info: info, Dynamic: dynamic})
}

// OpsMux bundles the operator surface on one mux, meant for a separate
// loopback listener (`evorec serve -ops-addr`), so profiling and metrics
// never share a port — or an exposure decision — with the public API:
//
//	GET /metrics        Prometheus text exposition (?exemplars=1 opt-in)
//	GET /healthz        liveness + build info
//	GET /readyz         readiness (replay/checkpoint/drain aware)
//	GET /debug/traces   completed-trace ring as JSON
//	GET /debug/pprof/*  net/http/pprof profiles
//	GET /debug/vars     expvar (includes the registry mirror)
func OpsMux(cfg OpsConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", cfg.Registry.Handler())
	mux.Handle("GET /healthz", HealthHandler(cfg.Info, cfg.Dynamic))
	mux.Handle("GET /readyz", ReadyHandler(cfg.Ready))
	if cfg.Tracer != nil {
		mux.Handle("GET /debug/traces", cfg.Tracer.TracesHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}
