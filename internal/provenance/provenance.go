// Package provenance implements the transparency perspective of the paper's
// §III-b: an append-only record store that captures who produced each data
// item, when, by what process, and from which inputs, so that the questions
// the paper lists — "who created this data item and when, by whom was it
// modified, what process was used" — are answerable for every recommendation
// the engine emits.
//
// Records carry one of the paper's three trust sources (observation,
// inference, belief adoption) and form a DAG through their input references;
// Lineage walks it. The core engine writes one record per pipeline stage
// (ingest, delta, measure evaluation, recommendation), which makes every
// recommendation reproducible from its transparency report.
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Source classifies how a record's content was established; the paper names
// these three sources for assessing correctness and reliability.
type Source uint8

const (
	// Observation marks directly observed data (e.g. an ingested version).
	Observation Source = iota
	// Inference marks derived data (e.g. a computed delta or measure).
	Inference
	// BeliefAdoption marks data taken on trust from another agent.
	BeliefAdoption
)

// String names the source.
func (s Source) String() string {
	switch s {
	case Observation:
		return "observation"
	case Inference:
		return "inference"
	case BeliefAdoption:
		return "belief_adoption"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Record is one provenance entry: an activity performed by an agent that
// consumed input records and produced named artifacts.
type Record struct {
	// ID is the unique record identifier, assigned by the store.
	ID string
	// Activity names the process that ran (e.g. "compute_delta").
	Activity string
	// Agent names who/what ran it (user name or component name).
	Agent string
	// Source classifies the trust source of the produced data.
	Source Source
	// Time is when the activity completed.
	Time time.Time
	// Inputs lists the IDs of records whose artifacts were consumed.
	Inputs []string
	// Artifacts names the data items produced (e.g. "delta:v1:v2").
	Artifacts []string
	// Note is free-form documentation.
	Note string
}

// Store is an append-only provenance log with artifact and lineage indexes.
// The zero value is not ready; use NewStore. Store is safe for concurrent
// use: every recommendation the service layer runs in parallel appends its
// record here, so the log carries its own lock rather than leaning on the
// callers' discipline. Records handed out are shared — treat them as
// immutable.
type Store struct {
	mu        sync.RWMutex
	records   []*Record
	byID      map[string]*Record
	producers map[string][]string // artifact -> producing record IDs, in order
	seq       int
	now       func() time.Time
}

// NewStore returns an empty store stamping records with time.Now.
func NewStore() *Store {
	return &Store{
		byID:      make(map[string]*Record),
		producers: make(map[string][]string),
		now:       time.Now,
	}
}

// NewStoreWithClock returns a store using the given clock; tests and
// deterministic experiment runs inject a fixed clock.
func NewStoreWithClock(clock func() time.Time) *Store {
	s := NewStore()
	s.now = clock
	return s
}

// Append validates and stores a record, assigning its ID and timestamp.
// Every input must reference an existing record; at least one artifact must
// be produced.
func (s *Store) Append(activity, agent string, src Source, inputs, artifacts []string, note string) (*Record, error) {
	if activity == "" {
		return nil, fmt.Errorf("provenance: activity must not be empty")
	}
	if len(artifacts) == 0 {
		return nil, fmt.Errorf("provenance: record for %q must produce at least one artifact", activity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, in := range inputs {
		if _, ok := s.byID[in]; !ok {
			return nil, fmt.Errorf("provenance: input record %q does not exist", in)
		}
	}
	s.seq++
	r := &Record{
		ID:        fmt.Sprintf("r%06d", s.seq),
		Activity:  activity,
		Agent:     agent,
		Source:    src,
		Time:      s.now(),
		Inputs:    append([]string(nil), inputs...),
		Artifacts: append([]string(nil), artifacts...),
		Note:      note,
	}
	s.records = append(s.records, r)
	s.byID[r.ID] = r
	for _, a := range r.Artifacts {
		s.producers[a] = append(s.producers[a], r.ID)
	}
	return r, nil
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Get returns the record with the given ID.
func (s *Store) Get(id string) (*Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byID[id]
	return r, ok
}

// Records returns all records in append order.
func (s *Store) Records() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Record, len(s.records))
	copy(out, s.records)
	return out
}

// ProducersOf returns the records that produced the artifact, in append
// order. The first is the creator; later ones are modifications.
func (s *Store) ProducersOf(artifact string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.producersOfLocked(artifact)
}

func (s *Store) producersOfLocked(artifact string) []*Record {
	ids := s.producers[artifact]
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.byID[id]
	}
	return out
}

// Creator returns the record that first produced the artifact.
func (s *Store) Creator(artifact string) (*Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.creatorLocked(artifact)
}

func (s *Store) creatorLocked(artifact string) (*Record, bool) {
	ps := s.producers[artifact]
	if len(ps) == 0 {
		return nil, false
	}
	return s.byID[ps[0]], true
}

// Modifiers returns the records that re-produced the artifact after its
// creation.
func (s *Store) Modifiers(artifact string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modifiersLocked(artifact)
}

func (s *Store) modifiersLocked(artifact string) []*Record {
	ps := s.producersOfLocked(artifact)
	if len(ps) <= 1 {
		return nil
	}
	return ps[1:]
}

// Lineage returns every record the artifact transitively depends on,
// including its own producers, ordered by record ID (i.e. creation order).
func (s *Store) Lineage(artifact string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lineageLocked(artifact)
}

func (s *Store) lineageLocked(artifact string) []*Record {
	seen := make(map[string]bool)
	var stack []string
	stack = append(stack, s.producers[artifact]...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, s.byID[id].Inputs...)
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.byID[id]
	}
	return out
}

// Report renders the transparency report for an artifact: creator,
// modifications, and the full derivation chain — the §III-b questions in
// one document.
func (s *Store) Report(artifact string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "Transparency report for %q\n", artifact)
	creator, ok := s.creatorLocked(artifact)
	if !ok {
		b.WriteString("  no provenance recorded\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  created by %s via %s (%s) at %s\n",
		creator.Agent, creator.Activity, creator.Source, creator.Time.Format(time.RFC3339))
	for _, m := range s.modifiersLocked(artifact) {
		fmt.Fprintf(&b, "  modified by %s via %s (%s) at %s\n",
			m.Agent, m.Activity, m.Source, m.Time.Format(time.RFC3339))
	}
	b.WriteString("  derivation:\n")
	for _, r := range s.lineageLocked(artifact) {
		fmt.Fprintf(&b, "    [%s] %s by %s (%s) -> %s\n",
			r.ID, r.Activity, r.Agent, r.Source, strings.Join(r.Artifacts, ", "))
	}
	return b.String()
}
