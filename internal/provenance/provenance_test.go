package provenance

import (
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2017, 4, 19, 10, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func TestAppendAssignsIDsAndTimes(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	r1, err := s.Append("ingest", "curator", Observation, nil, []string{"version:v1"}, "")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Append("ingest", "curator", Observation, nil, []string{"version:v2"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID == r2.ID || r1.ID == "" {
		t.Fatalf("IDs must be unique and non-empty: %q %q", r1.ID, r2.ID)
	}
	if !r2.Time.After(r1.Time) {
		t.Fatal("clock must advance")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Append("", "a", Inference, nil, []string{"x"}, ""); err == nil {
		t.Fatal("empty activity must fail")
	}
	if _, err := s.Append("act", "a", Inference, nil, nil, ""); err == nil {
		t.Fatal("no artifacts must fail")
	}
	if _, err := s.Append("act", "a", Inference, []string{"r999999"}, []string{"x"}, ""); err == nil {
		t.Fatal("dangling input must fail")
	}
}

func TestGetAndRecords(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	r, _ := s.Append("a", "ag", Observation, nil, []string{"x"}, "note")
	got, ok := s.Get(r.ID)
	if !ok || got.Note != "note" {
		t.Fatal("Get must return the stored record")
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) must fail")
	}
	if len(s.Records()) != 1 {
		t.Fatal("Records must return all records")
	}
}

func TestCreatorAndModifiers(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	c, _ := s.Append("create", "alice", Observation, nil, []string{"doc"}, "")
	m1, _ := s.Append("edit", "bob", Inference, []string{c.ID}, []string{"doc"}, "")
	s.Append("edit", "carol", Inference, []string{m1.ID}, []string{"doc"}, "")

	creator, ok := s.Creator("doc")
	if !ok || creator.Agent != "alice" {
		t.Fatalf("Creator = %+v", creator)
	}
	mods := s.Modifiers("doc")
	if len(mods) != 2 || mods[0].Agent != "bob" || mods[1].Agent != "carol" {
		t.Fatalf("Modifiers = %v", mods)
	}
	if _, ok := s.Creator("ghost"); ok {
		t.Fatal("Creator of unknown artifact must fail")
	}
	if s.Modifiers("ghost") != nil {
		t.Fatal("Modifiers of unknown artifact must be nil")
	}
}

func TestLineageWalksDAG(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	v1, _ := s.Append("ingest", "sys", Observation, nil, []string{"version:v1"}, "")
	v2, _ := s.Append("ingest", "sys", Observation, nil, []string{"version:v2"}, "")
	d, _ := s.Append("delta", "sys", Inference, []string{v1.ID, v2.ID}, []string{"delta:v1:v2"}, "")
	m, _ := s.Append("measure", "sys", Inference, []string{d.ID}, []string{"scores:change_count"}, "")
	rec, _ := s.Append("recommend", "sys", Inference, []string{m.ID}, []string{"rec:u1"}, "")

	lin := s.Lineage("rec:u1")
	if len(lin) != 5 {
		t.Fatalf("lineage size = %d, want 5", len(lin))
	}
	// Creation order by ID.
	for i := 1; i < len(lin); i++ {
		if lin[i-1].ID >= lin[i].ID {
			t.Fatal("lineage must be ordered by record ID")
		}
	}
	if lin[0].ID != v1.ID || lin[4].ID != rec.ID {
		t.Fatalf("lineage endpoints wrong: %s .. %s", lin[0].ID, lin[4].ID)
	}
	// Lineage of an intermediate artifact excludes downstream records.
	dl := s.Lineage("delta:v1:v2")
	if len(dl) != 3 {
		t.Fatalf("delta lineage size = %d, want 3", len(dl))
	}
}

func TestLineageHandlesSharedInputs(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	base, _ := s.Append("ingest", "sys", Observation, nil, []string{"base"}, "")
	a, _ := s.Append("stepA", "sys", Inference, []string{base.ID}, []string{"a"}, "")
	b, _ := s.Append("stepB", "sys", Inference, []string{base.ID}, []string{"b"}, "")
	j, _ := s.Append("join", "sys", Inference, []string{a.ID, b.ID}, []string{"joined"}, "")
	_ = j
	lin := s.Lineage("joined")
	if len(lin) != 4 { // diamond: base counted once
		t.Fatalf("diamond lineage size = %d, want 4", len(lin))
	}
}

func TestReportAnswersTransparencyQuestions(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	c, _ := s.Append("create", "alice", Observation, nil, []string{"doc"}, "")
	s.Append("edit", "bob", BeliefAdoption, []string{c.ID}, []string{"doc"}, "")
	rep := s.Report("doc")
	for _, want := range []string{"alice", "bob", "create", "edit", "observation", "belief_adoption", "derivation"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	empty := s.Report("ghost")
	if !strings.Contains(empty, "no provenance recorded") {
		t.Fatalf("unknown artifact report = %q", empty)
	}
}

func TestSourceStrings(t *testing.T) {
	if Observation.String() != "observation" || Inference.String() != "inference" ||
		BeliefAdoption.String() != "belief_adoption" {
		t.Fatal("source names wrong")
	}
	if Source(9).String() == "" {
		t.Fatal("unknown source must render")
	}
}

func TestAppendCopiesSlices(t *testing.T) {
	s := NewStoreWithClock(fixedClock())
	base, _ := s.Append("a", "x", Observation, nil, []string{"base"}, "")
	inputs := []string{base.ID}
	arts := []string{"out"}
	r, _ := s.Append("b", "x", Inference, inputs, arts, "")
	inputs[0] = "mutated"
	arts[0] = "mutated"
	if r.Inputs[0] != base.ID || r.Artifacts[0] != "out" {
		t.Fatal("Append must copy caller slices")
	}
}
