package evorec_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"evorec"
)

// apiWorld builds a small deterministic world through the public API only.
func apiWorld(t *testing.T) (*evorec.VersionStore, []evorec.Term) {
	t.Helper()
	vs, focuses, err := evorec.GenerateVersions(
		evorec.SmallKB(), evorec.EvolveConfig{Ops: 80, Locality: 0.85}, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	return vs, focuses
}

func TestPublicAPIEndToEnd(t *testing.T) {
	vs, focuses := apiWorld(t)
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	u := evorec.NewProfile("api-user")
	u.SetInterest(focuses[0], 1)

	recs, err := eng.Recommend(u, evorec.Request{OlderID: "v1", NewerID: "v2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recommendations = %d", len(recs))
	}
	report, err := eng.UserReport(u, evorec.Request{OlderID: "v2", NewerID: "v3", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "Evolution digest") {
		t.Fatalf("report = %q", report)
	}
	trendA, err := eng.TrendAnalysis("change_count")
	if err != nil {
		t.Fatal(err)
	}
	if trendA.Len() == 0 {
		t.Fatal("trend analysis empty")
	}
}

func TestPublicAPISerializationRoundTrip(t *testing.T) {
	vs, _ := apiWorld(t)
	v1, _ := vs.Get("v1")
	var buf bytes.Buffer
	if err := evorec.WriteNTriples(&buf, v1.Graph); err != nil {
		t.Fatal(err)
	}
	back, err := evorec.ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != v1.Graph.Len() {
		t.Fatalf("round trip %d != %d", back.Len(), v1.Graph.Len())
	}
}

func TestPublicAPIMeasuresAndDeltas(t *testing.T) {
	vs, _ := apiWorld(t)
	v1, _ := vs.Get("v1")
	v2, _ := vs.Get("v2")
	d := evorec.ComputeDelta(v1.Graph, v2.Graph)
	if d.IsEmpty() {
		t.Fatal("delta empty")
	}
	if len(evorec.DetectHighLevel(v1.Graph, v2.Graph)) == 0 {
		t.Fatal("no high-level changes detected")
	}
	ctx := evorec.NewMeasureContext(v1, v2)
	if len(evorec.DefaultMeasures()) != 7 {
		t.Fatalf("default measures = %d", len(evorec.DefaultMeasures()))
	}
	if len(evorec.ExtendedMeasures()) != 11 {
		t.Fatalf("extended measures = %d", len(evorec.ExtendedMeasures()))
	}
	items := evorec.BuildItems(ctx, evorec.NewExtendedMeasureRegistry())
	par := evorec.BuildItemsParallel(ctx, evorec.NewExtendedMeasureRegistry())
	if len(items) != 11 || len(par) != 11 {
		t.Fatalf("items = %d/%d", len(items), len(par))
	}
}

func TestPublicAPIGroupAndPrivacy(t *testing.T) {
	vs, _ := apiWorld(t)
	v1, _ := vs.Get("v1")
	v2, _ := vs.Get("v2")
	ctx := evorec.NewMeasureContext(v1, v2)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	sch := evorec.ExtractSchema(v1.Graph)
	rng := rand.New(rand.NewSource(1))
	pool, _, err := evorec.GenerateProfiles(sch, evorec.ProfileConfig{Users: 12, ExtraInterests: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := evorec.GenerateGroup(pool, 4, evorec.AntagonisticGroup, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel := evorec.FairGreedyTopK(g, items, 3, 0.8)
	if evorec.MinSatisfaction(g, items, sel) < 0 {
		t.Fatal("min satisfaction out of range")
	}
	if p := evorec.Proportionality(g, items, sel, 1, 3); p < 0 || p > 1 {
		t.Fatalf("proportionality = %g", p)
	}
	if e := evorec.EnvySpread(g, items, sel); e < 0 {
		t.Fatalf("envy spread = %g", e)
	}

	anon, groups, err := evorec.KAnonymize(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 || evorec.ReidentificationRisk(pool, anon) > 0.5 {
		t.Fatal("k-anonymity did not protect the pool")
	}
}

func TestPublicAPIQuery(t *testing.T) {
	vs, _ := apiWorld(t)
	v1, _ := vs.Get("v1")
	res, err := evorec.RunQuery(v1.Graph, &evorec.Query{
		Patterns: []evorec.QueryPattern{
			{S: evorec.Var("c"), P: evorec.Const(evorec.RDFType), O: evorec.Const(evorec.RDFSClass)},
		},
		Select: []string{"c"},
		Limit:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("query rows = %d, want 5", res.Len())
	}
}

func TestPublicAPIArchive(t *testing.T) {
	vs, _ := apiWorld(t)
	dir := t.TempDir()
	man, err := evorec.SaveArchive(dir, vs, evorec.ArchiveOptions{Policy: evorec.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evorec.ArchiveDiskUsage(dir, man); err != nil {
		t.Fatal(err)
	}
	back, err := evorec.LoadArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != vs.Len() {
		t.Fatalf("archive round trip %d != %d", back.Len(), vs.Len())
	}
}

func TestPublicAPIFeedbackLoop(t *testing.T) {
	vs, focuses := apiWorld(t)
	v1, _ := vs.Get("v1")
	v2, _ := vs.Get("v2")
	ctx := evorec.NewMeasureContext(v1, v2)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	u := evorec.NewProfile("learner")
	u.SetInterest(focuses[0], 1)
	l, err := evorec.NewLearner(0.3)
	if err != nil {
		t.Fatal(err)
	}
	top := evorec.TopK(u, items, 1)[0]
	var it evorec.Item
	for _, cand := range items {
		if cand.ID() == top.MeasureID {
			it = cand
		}
	}
	before := evorec.Relatedness(u, it)
	l.Accept(u, it)
	if evorec.Relatedness(u, it) < before {
		t.Fatal("accept must not lower relatedness")
	}
	if evorec.ExplainText(u, it, 2) == "" {
		t.Fatal("explanation must render")
	}
	if len(evorec.Explain(u, it, 3)) == 0 {
		t.Fatal("explanation must have contributions")
	}
}

// TestPublicAPISurface exercises the remaining facade wrappers end to end,
// so the documented public surface is known to work as exported.
func TestPublicAPISurface(t *testing.T) {
	vs, focuses := apiWorld(t)
	v1, _ := vs.Get("v1")
	v2, _ := vs.Get("v2")
	ctx := evorec.NewMeasureContext(v1, v2)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	u := evorec.NewProfile("surface")
	u.SetInterest(focuses[0], 1)

	// Diversity family.
	if got := evorec.MMR(u, items, 3, 0.5); len(got) != 3 {
		t.Fatalf("MMR = %d items", len(got))
	}
	if got := evorec.MaxMin(u, items, 3); len(got) != 3 {
		t.Fatalf("MaxMin = %d items", len(got))
	}
	if got := evorec.NoveltyTopK(u, items, 2); len(got) != 2 {
		t.Fatalf("NoveltyTopK = %d items", len(got))
	}
	sel := evorec.SemanticTopK(u, items, 3)
	if cov := evorec.CategoryCoverage(items, sel); cov <= 0 {
		t.Fatalf("coverage = %g", cov)
	}
	if ild := evorec.IntraListDiversity(items, sel); ild < 0 {
		t.Fatalf("ILD = %g", ild)
	}
	if mr := evorec.MeanRelatedness(u, items, sel); mr < 0 {
		t.Fatalf("mean relatedness = %g", mr)
	}

	// Group family.
	grp, err := evorec.NewGroup("g", []*evorec.Profile{u, evorec.NewProfile("other")})
	if err != nil {
		t.Fatal(err)
	}
	gsel := evorec.GroupTopK(grp, items, 2, evorec.LeastMisery)
	sats := evorec.GroupSatisfactions(grp, items, gsel)
	if len(sats) != 2 {
		t.Fatalf("sats = %v", sats)
	}
	if evorec.MeanSatisfaction(grp, items, gsel) < 0 || evorec.JainIndex(sats) <= 0 {
		t.Fatal("group metrics out of range")
	}
	if s := evorec.Satisfaction(u, items, gsel); s < 0 || s > 1+1e-9 {
		t.Fatalf("satisfaction = %g", s)
	}

	// Ranking metrics.
	ids := evorec.MeasureIDs(gsel)
	if evorec.NDCGAtK(ids, map[string]float64{ids[0]: 1}, 2) <= 0 {
		t.Fatal("NDCG wrapper broken")
	}

	// Privacy helpers.
	pool := []*evorec.Profile{u, evorec.NewProfile("b"), evorec.NewProfile("c")}
	pool[1].SetInterest(focuses[0], 0.5)
	pool[2].SetInterest(focuses[len(focuses)-1], 1)
	universe := evorec.InterestUniverse(pool)
	if len(universe) == 0 {
		t.Fatal("universe empty")
	}
	noisy, err := evorec.DPPerturb(u, universe, 1, rand.New(rand.NewSource(1)))
	if err != nil || noisy.ID != u.ID {
		t.Fatalf("DPPerturb: %v", err)
	}

	// Analysis helpers.
	sch := evorec.ExtractSchema(v1.Graph)
	an := evorec.NewSemanticAnalyzer(v1.Graph, sch)
	if an.Schema() != sch {
		t.Fatal("analyzer schema mismatch")
	}
	if s, err := evorec.Summarize(v1.Graph, 5); err != nil || s.Size() < 5 {
		t.Fatalf("Summarize: %v", err)
	}
	if a, err := evorec.AnalyzeTrend(vs, evorec.DefaultMeasures()[0]); err != nil || a.Len() == 0 {
		t.Fatalf("AnalyzeTrend: %v", err)
	}

	// Explanations.
	top := evorec.TopK(u, items, 1)
	var it evorec.Item
	for _, cand := range items {
		if cand.ID() == top[0].MeasureID {
			it = cand
		}
	}
	if evorec.ExplainText(u, it, 1) == "" {
		t.Fatal("ExplainText empty")
	}

	// Profile persistence via facade.
	var buf bytes.Buffer
	if err := evorec.WriteProfileJSON(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := evorec.ReadProfileJSON(&buf)
	if err != nil || back.ID != u.ID {
		t.Fatalf("profile round trip: %v", err)
	}

	// Vocabulary and term helpers.
	tr := evorec.T(evorec.ResourceIRI("x"), evorec.RDFType, evorec.RDFSClass)
	g := evorec.NewGraph()
	g.Add(tr)
	g.Add(evorec.T(evorec.SchemaIRI("C"), evorec.RDFSSubClassOf, evorec.RDFSClass))
	g.Add(evorec.T(evorec.SchemaIRI("p"), evorec.RDFSDomain, evorec.SchemaIRI("C")))
	g.Add(evorec.T(evorec.SchemaIRI("p"), evorec.RDFSRange, evorec.SchemaIRI("C")))
	g.Add(evorec.T(evorec.SchemaIRI("C"), evorec.RDFSLabel, evorec.NewLiteral("c")))
	if g.Len() != 5 {
		t.Fatalf("vocabulary graph = %d triples", g.Len())
	}
	store := evorec.NewVersionStore()
	if err := store.Add(&evorec.Version{ID: "x", Graph: g}); err != nil {
		t.Fatal(err)
	}
}
