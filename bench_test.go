// Benchmarks: one per experiment table/figure (the bench target column of
// DESIGN.md §6), each regenerating its table at test scale, plus
// micro-benchmarks for the substrate layers the pipeline is built from.
//
// Run: go test -bench=. -benchmem
package evorec_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"evorec"
	"evorec/internal/archive"
	"evorec/internal/exp"
	"evorec/internal/graphx"
	"evorec/internal/measures"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/semantics"
	"evorec/internal/synth"
	"evorec/internal/trend"
)

// benchParams is the benchmark-scale experiment setup: small enough for
// stable per-iteration times, identical in structure to the full scale.
func benchParams() exp.Params { return exp.TestScale() }

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// ---------------------------------------------------------------------------
// One benchmark per table / figure.

func BenchmarkE1DeltaStatistics(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2MeasureComplementarity(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3NeighborhoodLocality(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4RelatednessQuality(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5DiversityTradeoff(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6GroupFairness(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7FairReranking(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8AnonymityUtility(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Scalability(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10ProvenanceOverhead(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkA1BetweennessSampling(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2IndexVariants(b *testing.B)          { benchExperiment(b, "A2") }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

func benchVersions(b *testing.B) (*evorec.Version, *evorec.Version) {
	b.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	return vs.At(0), vs.At(1)
}

// sizedTriples builds a deterministic KB-shaped triple set of exactly n
// triples: typed instances with labels and skewless links, enough term reuse
// that every index level gets realistic fan-out.
func sizedTriples(n int) []evorec.Triple {
	rng := rand.New(rand.NewSource(int64(n)))
	out := make([]evorec.Triple, 0, n)
	seen := make(map[evorec.Triple]struct{}, n)
	add := func(t evorec.Triple) {
		if _, dup := seen[t]; dup {
			return
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	classes := 1 + n/400
	instances := 1 + n/3
	for len(out) < n {
		i := rng.Intn(instances)
		subj := evorec.ResourceIRI(fmt.Sprintf("i%06d", i))
		switch rng.Intn(4) {
		case 0:
			add(evorec.T(subj, evorec.RDFType, evorec.SchemaIRI(fmt.Sprintf("C%03d", rng.Intn(classes)))))
		case 1:
			add(evorec.T(subj, evorec.RDFSLabel, evorec.NewLiteral(fmt.Sprintf("thing %d", i))))
		default:
			add(evorec.T(subj, evorec.SchemaIRI(fmt.Sprintf("p%02d", rng.Intn(24))),
				evorec.ResourceIRI(fmt.Sprintf("i%06d", rng.Intn(instances)))))
		}
	}
	return out
}

// sizedVersionPair materializes a shared-dictionary version pair of n
// triples with ~2% churn, the shape delta computation sees in production.
func sizedVersionPair(n int) (*evorec.Graph, *evorec.Graph) {
	triples := sizedTriples(n)
	older := evorec.NewGraph()
	older.Grow(n)
	older.AddAll(triples)
	newer := older.Clone()
	rng := rand.New(rand.NewSource(int64(n) + 1))
	churn := n/50 + 1
	for i := 0; i < churn; i++ {
		newer.Remove(triples[rng.Intn(len(triples))])
		newer.Add(evorec.T(
			evorec.ResourceIRI(fmt.Sprintf("new%05d", i)),
			evorec.SchemaIRI("p00"),
			evorec.ResourceIRI(fmt.Sprintf("i%06d", rng.Intn(n/3+1)))))
	}
	return older, newer
}

var benchSizes = []struct {
	name string
	n    int
}{{"10k", 10_000}, {"100k", 100_000}}

func BenchmarkGraphAdd(b *testing.B) {
	b.Run("synth", func(b *testing.B) {
		older, _ := benchVersions(b)
		triples := older.Graph.Triples()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := evorec.NewGraph()
			g.AddAll(triples)
		}
	})
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			triples := sizedTriples(size.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := evorec.NewGraph()
				g.Grow(len(triples))
				g.AddAll(triples)
			}
		})
	}
}

func BenchmarkGraphMatchBound(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			g := evorec.NewGraph()
			g.AddAll(sizedTriples(size.n))
			preds := make([]evorec.Term, 24)
			for i := range preds {
				preds[i] = evorec.SchemaIRI(fmt.Sprintf("p%02d", i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CountMatch(evorec.Term{}, preds[i%len(preds)], evorec.Term{})
			}
		})
	}
}

func BenchmarkGraphMatchBoundPredicate(b *testing.B) {
	older, _ := benchVersions(b)
	sch := schema.Extract(older.Graph)
	props := sch.PropertyTerms()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		older.Graph.CountMatch(evorec.Term{}, props[i%len(props)], evorec.Term{})
	}
}

func BenchmarkDeltaCompute(b *testing.B) {
	b.Run("synth", func(b *testing.B) {
		older, newer := benchVersions(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			evorec.ComputeDelta(older.Graph, newer.Graph)
		}
	})
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			older, newer := sizedVersionPair(size.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evorec.ComputeDelta(older, newer)
			}
		})
	}
}

func BenchmarkDeltaComputeParallel(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			older, newer := sizedVersionPair(size.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evorec.ComputeDeltaParallel(older, newer)
			}
		})
	}
}

func BenchmarkSchemaExtract(b *testing.B) {
	older, _ := benchVersions(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schema.Extract(older.Graph)
	}
}

func BenchmarkSemanticAnalyzer(b *testing.B) {
	older, _ := benchVersions(b)
	sch := schema.Extract(older.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semantics.NewAnalyzer(older.Graph, sch)
	}
}

func BenchmarkBetweennessExact(b *testing.B) {
	older, _ := benchVersions(b)
	g := graphx.FromAdjacency(schema.Extract(older.Graph).ClassGraph())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Betweenness()
	}
}

func BenchmarkBetweennessSampled(b *testing.B) {
	older, _ := benchVersions(b)
	g := graphx.FromAdjacency(schema.Extract(older.Graph).ClassGraph())
	rng := rand.New(rand.NewSource(1))
	k := g.NumNodes() / 4
	if k < 1 {
		k = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BetweennessSampled(k, rng)
	}
}

func BenchmarkMeasureContext(b *testing.B) {
	older, newer := benchVersions(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measures.NewContext(older, newer)
	}
}

func BenchmarkAllMeasures(b *testing.B) {
	older, newer := benchVersions(b)
	ctx := measures.NewContext(older, newer)
	reg := measures.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recommend.BuildItems(ctx, reg)
	}
}

// BenchmarkRecommendTopK measures the served scoring path: the item index
// compiled once per pair (as the engine caches it), each request compiling
// the user's interests and scoring through flat vectors and postings.
// BenchmarkRecommendTopKMap is the map-scored reference path the kernel is
// held bit-identical to.
func BenchmarkRecommendTopK(b *testing.B) {
	older, newer := benchVersions(b)
	ctx := measures.NewContext(older, newer)
	idx := recommend.NewItemIndex(recommend.BuildItems(ctx, measures.NewRegistry()))
	sch := schema.Extract(older.Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 8, ExtraInterests: 2},
		rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopK(pool[i%len(pool)], 3)
	}
}

func BenchmarkRecommendTopKMap(b *testing.B) {
	older, newer := benchVersions(b)
	ctx := measures.NewContext(older, newer)
	items := recommend.BuildItems(ctx, measures.NewRegistry())
	sch := schema.Extract(older.Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 8, ExtraInterests: 2},
		rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recommend.TopK(pool[i%len(pool)], items, 3)
	}
}

func BenchmarkKAnonymize(b *testing.B) {
	older, _ := benchVersions(b)
	sch := schema.Extract(older.Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 32, ExtraInterests: 2},
		rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := recommend.KAnonymize(pool, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePipeline(b *testing.B) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	sch := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 4, ExtraInterests: 2},
		rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := evorec.NewEngine(evorec.EngineConfig{})
		if err := eng.IngestAll(vs); err != nil {
			b.Fatal(err)
		}
		for _, u := range pool {
			if _, err := eng.Recommend(u, evorec.Request{OlderID: "v1", NewerID: "v2", K: 3}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE11ChangeTrends(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12FeedLocality(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkA3ArchivePolicies(b *testing.B) { benchExperiment(b, "A3") }

func BenchmarkTrendAnalyze(b *testing.B) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, 3, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trend.Analyze(vs, measures.ChangeCount{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveSaveLoadDeltaChain(b *testing.B) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, 3, 42)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := archive.Save(dir, vs, archive.Options{Policy: archive.DeltaChain}); err != nil {
			b.Fatal(err)
		}
		if _, err := archive.Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// sizedChainStore wraps a sized version pair (shared dictionary, ~2% churn)
// in a VersionStore, the unit the persistent stores operate on.
func sizedChainStore(n int) *evorec.VersionStore {
	older, newer := sizedVersionPair(n)
	vs := evorec.NewVersionStore()
	if err := vs.Add(&evorec.Version{ID: "v1", Graph: older}); err != nil {
		panic(err)
	}
	if err := vs.Add(&evorec.Version{ID: "v2", Graph: newer}); err != nil {
		panic(err)
	}
	return vs
}

func BenchmarkStoreSave(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			vs := sizedChainStore(size.n)
			dir := b.TempDir()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := evorec.SaveStore(dir, vs, evorec.StoreOptions{Policy: evorec.StoreDeltaChain}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreLoad(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			vs := sizedChainStore(size.n)
			dir := b.TempDir()
			if _, err := evorec.SaveStore(dir, vs, evorec.StoreOptions{Policy: evorec.StoreDeltaChain}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := evorec.OpenStore(dir)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ds.VersionStore(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreOpenLazy measures the fixed cost of opening a store handle
// (manifest + string table) without materializing any version — what a
// service pays per dataset before the first request.
func BenchmarkStoreOpenLazy(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			vs := sizedChainStore(size.n)
			dir := b.TempDir()
			if _, err := evorec.SaveStore(dir, vs, evorec.StoreOptions{Policy: evorec.StoreDeltaChain}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := evorec.OpenStore(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArchiveTextSaveLoad is the text-codec counterpart of
// StoreSave+StoreLoad at the same sizes, so the sized text-vs-binary gap is
// visible in one bench run.
func BenchmarkArchiveTextSaveLoad(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.name, func(b *testing.B) {
			vs := sizedChainStore(size.n)
			dir := b.TempDir()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := archive.Save(dir, vs, archive.Options{Policy: archive.DeltaChain}); err != nil {
					b.Fatal(err)
				}
				if _, err := archive.Load(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA4SummaryCoverage(b *testing.B) { benchExperiment(b, "A4") }

func BenchmarkSummarize(b *testing.B) {
	older, _ := benchVersions(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evorec.Summarize(older.Graph, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNotify(b *testing.B) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(vs); err != nil {
		b.Fatal(err)
	}
	sch := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 16, ExtraInterests: 2},
		rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Notify(pool, "v1", "v2", 0.1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedFanout measures the commit-triggered fan-out at 10k and
// 100k standing subscribers with a varying affected fraction: subscribers
// in the "affected" share register an interest the pair's items actually
// score, the rest register a term outside every item vector, so only the
// affected share is matched by the inverted index and scored. The headline
// is the scaling: per-commit cost tracks the affected count, not the pool
// size — at a fixed pool, 1% affected must be ≥ 10× faster than 100%.
func BenchmarkFeedFanout(b *testing.B) {
	older, newer := benchVersions(b)
	ctx := measures.NewContext(older, newer)
	items := recommend.BuildItems(ctx, measures.NewRegistry())
	idx := evorec.NewItemIndex(items)
	var hot evorec.Term
	hotW := 0.0
	for _, it := range items {
		for tm, w := range it.Vector {
			if w > hotW {
				hot, hotW = tm, w
			}
		}
	}
	if hotW == 0 {
		b.Fatal("no scored entity in items")
	}
	cold := evorec.SchemaIRI("FanoutColdRegion")
	for _, subs := range []int{10_000, 100_000} {
		for _, frac := range []float64{0.01, 1.0} {
			name := fmt.Sprintf("%dk/affected%d%%", subs/1000, int(frac*100))
			b.Run(name, func(b *testing.B) {
				// MaxLog stays small: the benchmark measures fan-out, not
				// unbounded log growth across iterations.
				f, err := evorec.OpenFeed(evorec.FeedConfig{Threshold: 0.01, K: 1, MaxLog: 4})
				if err != nil {
					b.Fatal(err)
				}
				affected := int(float64(subs) * frac)
				for i := 0; i < subs; i++ {
					u := evorec.NewProfile(fmt.Sprintf("u%06d", i))
					if i < affected {
						u.SetInterest(hot, 1)
					} else {
						u.SetInterest(cold, 1)
					}
					if _, _, err := f.Subscribe(u); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := f.FanOutIndexed("v1", fmt.Sprintf("n%08d", i), idx)
					if err != nil {
						b.Fatal(err)
					}
					if st.Affected != affected {
						b.Fatalf("affected = %d, want %d", st.Affected, affected)
					}
				}
			})
		}
	}
}

// ingestBody renders one full version body: a fixed base population plus a
// few sequence-unique triples, so consecutive versions delta-encode to a
// small constant-size change and the benchmark measures durability cost,
// not delta size.
func ingestBody(seq int) string {
	var sb strings.Builder
	for i := 0; i < 48; i++ {
		fmt.Fprintf(&sb, "<http://ex.org/i%03d> <http://ex.org/p%d> <http://ex.org/i%03d> .\n",
			i, i%4, (i*7)%48)
		fmt.Fprintf(&sb, "<http://ex.org/i%03d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/C%d> .\n",
			i, i%3)
	}
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&sb, "<http://ex.org/new%09d> <http://ex.org/p0> <http://ex.org/i%03d> .\n",
			seq*4+j, j)
	}
	return sb.String()
}

// ingestBurst is the fixed unit of ingestion work one benchmark iteration
// performs: 64 versions committed into a fresh disk-backed store, so every
// iteration does identical work regardless of b.N (a single ever-growing
// chain would bias against whichever variant runs more iterations).
const ingestBurst = 64

// benchIngest durably commits bursts of versions from the given number of
// concurrent committers while a reader keeps serving cached recommendations
// against the same service. workers=1 is the serial fsync-per-commit
// baseline: each commit is its own batch, acknowledged and checkpointed
// alone. workers=8 exercises the group-commit path, where concurrent
// commits coalesce into one WAL append + fsync per batch and checkpoints
// amortize across the burst. ns/op is per 64-version burst.
func benchIngest(b *testing.B, workers int) {
	bodies := make([]string, ingestBurst+2)
	for i := range bodies {
		bodies[i] = ingestBody(i)
	}
	svc := evorec.NewService(evorec.ServiceConfig{})
	defer svc.Close()

	// The reader hammers whichever dataset is current, proving ingestion
	// never blocks serving. Read failures surface after the timed region.
	var cur atomic.Pointer[evorec.ServiceDataset]
	u := evorec.NewProfile("reader")
	u.SetInterest(evorec.SchemaIRI("C0"), 1)
	req := evorec.Request{OlderID: "v1", NewerID: "v2", K: 3}
	stop := make(chan struct{})
	var reads int64
	readErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := cur.Load()
			if d == nil { // first iteration still setting up
				continue
			}
			if _, err := d.Recommend(u, req); err != nil {
				readErr <- err
				return
			}
			atomic.AddInt64(&reads, 1)
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		vs := evorec.NewVersionStore()
		g1 := evorec.NewGraph()
		if err := evorec.ReadNTriplesInto(g1, strings.NewReader(bodies[0])); err != nil {
			b.Fatal(err)
		}
		if err := vs.Add(&evorec.Version{ID: "v1", Graph: g1}); err != nil {
			b.Fatal(err)
		}
		if _, err := evorec.SaveStore(dir, vs, evorec.StoreOptions{Policy: evorec.StoreDeltaChain}); err != nil {
			b.Fatal(err)
		}
		d, err := svc.Open(fmt.Sprintf("bench%06d", i), dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Commit("v2", strings.NewReader(bodies[1])); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Recommend(u, req); err != nil { // warm the served pair
			b.Fatal(err)
		}
		cur.Store(d)
		b.StartTimer()

		commitOne := func(k int64) error {
			_, err := d.Commit(fmt.Sprintf("c%03d", k), strings.NewReader(bodies[int(k)+2]))
			return err
		}
		if workers == 1 {
			for k := int64(0); k < ingestBurst; k++ {
				if err := commitOne(k); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			var next int64 = -1
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := atomic.AddInt64(&next, 1)
						if k >= ingestBurst {
							return
						}
						if err := commitOne(k); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		}
	}
	b.StopTimer()
	close(stop)
	select {
	case err := <-readErr:
		b.Fatalf("reader failed during ingest: %v", err)
	default:
	}
	b.ReportMetric(float64(atomic.LoadInt64(&reads))/float64(b.N), "reads/burst")
}

// BenchmarkStoreIngest is the durable-ingestion headline: every commit is
// acknowledged only after its WAL record is fsynced, and the group committer
// amortizes that fsync (and the deferred segment/manifest checkpoint) across
// whatever has queued. The acceptance bar is group_commit_8 sustaining ≥3×
// the serial committed-versions/sec.
func BenchmarkStoreIngest(b *testing.B) {
	b.Run("serial_fsync_per_commit", func(b *testing.B) { benchIngest(b, 1) })
	b.Run("group_commit_8", func(b *testing.B) { benchIngest(b, 8) })
}

// BenchmarkServiceRecommend measures the service facade: "cold" is the
// first request against a pair (singleflight leader building the measure
// context), "warm" repeated requests against the cached pair, and
// "parallel" warm throughput under concurrent clients sharing one dataset
// (the RWMutex read path).
func BenchmarkServiceRecommend(b *testing.B) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	sch := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 8, ExtraInterests: 2},
		rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	req := evorec.Request{OlderID: "v1", NewerID: "v2", K: 3}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc := evorec.NewService(evorec.ServiceConfig{})
			d, err := svc.Add("bench", vs)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := d.Recommend(pool[0], req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		svc := evorec.NewService(evorec.ServiceConfig{})
		d, err := svc.Add("bench", vs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Recommend(pool[0], req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Recommend(pool[i%len(pool)], req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel", func(b *testing.B) {
		svc := evorec.NewService(evorec.ServiceConfig{})
		d, err := svc.Add("bench", vs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Recommend(pool[0], req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := d.Recommend(pool[i%len(pool)], req); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
