package evorec_test

import (
	"fmt"
	"log"

	"evorec"
)

// ExampleNewEngine demonstrates the full processing model: ingest an
// evolving dataset, recommend measures for a user, and read the
// transparency trail.
func ExampleNewEngine() {
	versions, focuses, err := evorec.GenerateVersions(
		evorec.SmallKB(), evorec.EvolveConfig{Ops: 80, Locality: 0.85}, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(versions); err != nil {
		log.Fatal(err)
	}
	user := evorec.NewProfile("alice")
	user.SetInterest(focuses[0], 1)

	recs, err := eng.Recommend(user, evorec.Request{OlderID: "v1", NewerID: "v2", K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations:", len(recs))
	// Output:
	// recommendations: 2
}

// ExampleComputeDelta shows the low-level delta between two versions.
func ExampleComputeDelta() {
	older := evorec.NewGraph()
	newer := evorec.NewGraph()
	c := evorec.SchemaIRI("Person")
	older.Add(evorec.T(c, evorec.RDFType, evorec.RDFSClass))
	newer.Add(evorec.T(c, evorec.RDFType, evorec.RDFSClass))
	newer.Add(evorec.T(evorec.ResourceIRI("alice"), evorec.RDFType, c))

	d := evorec.ComputeDelta(older, newer)
	fmt.Printf("added=%d deleted=%d\n", len(d.Added), len(d.Deleted))
	// Output:
	// added=1 deleted=0
}

// ExampleRunQuery evaluates a basic graph pattern against a graph.
func ExampleRunQuery() {
	g := evorec.NewGraph()
	person := evorec.SchemaIRI("Person")
	g.Add(evorec.T(evorec.ResourceIRI("alice"), evorec.RDFType, person))
	g.Add(evorec.T(evorec.ResourceIRI("bob"), evorec.RDFType, person))

	res, err := evorec.RunQuery(g, &evorec.Query{
		Patterns: []evorec.QueryPattern{
			{S: evorec.Var("x"), P: evorec.Const(evorec.RDFType), O: evorec.Const(person)},
		},
		Select:  []string{"x"},
		OrderBy: "x",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0].Local())
	}
	// Output:
	// alice
	// bob
}

// ExampleTopK ranks evolution measures by relatedness to a user.
func ExampleTopK() {
	versions, focuses, err := evorec.GenerateVersions(
		evorec.SmallKB(), evorec.EvolveConfig{Ops: 80, Locality: 0.9}, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := versions.Get("v1")
	v2, _ := versions.Get("v2")
	ctx := evorec.NewMeasureContext(v1, v2)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	u := evorec.NewProfile("u")
	u.SetInterest(focuses[0], 1)
	top := evorec.TopK(u, items, 2)
	fmt.Println(len(top), "measures recommended")
	// Output:
	// 2 measures recommended
}

// ExampleKAnonymize publishes a k-anonymous view of a profile pool.
func ExampleKAnonymize() {
	pool := []*evorec.Profile{
		evorec.NewProfile("u1"), evorec.NewProfile("u2"),
		evorec.NewProfile("u3"), evorec.NewProfile("u4"),
	}
	for i, p := range pool {
		p.SetInterest(evorec.SchemaIRI(fmt.Sprintf("C%d", i%2)), 1)
	}
	anon, groups, err := evorec.KAnonymize(pool, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d profiles in %d groups\n", len(anon), len(groups))
	// Output:
	// published 4 profiles in 2 groups
}
