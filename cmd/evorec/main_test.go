package main

import (
	"os"
	"path/filepath"
	"testing"

	"evorec"
)

// genTestVersions writes two version files into dir and returns their paths.
func genTestVersions(t *testing.T, dir string) (string, string) {
	t.Helper()
	if err := cmdGenerate([]string{"-out", dir, "-steps", "1", "-ops", "40", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "v1.nt"), filepath.Join(dir, "v2.nt")
}

func TestCmdGenerateWritesFiles(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	for _, path := range []string{v1, v2} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	if err := cmdGenerate([]string{"-out", dir, "-preset", "nope"}); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestCmdDiff(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	if err := cmdDiff([]string{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiff([]string{v1}); err == nil {
		t.Fatal("missing arg must fail")
	}
	if err := cmdDiff([]string{v1, filepath.Join(dir, "missing.nt")}); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCmdMeasures(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	if err := cmdMeasures([]string{"-k", "3", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMeasures([]string{v1}); err == nil {
		t.Fatal("missing arg must fail")
	}
}

func TestCmdRecommend(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	if err := cmdRecommend([]string{"-k", "2", "-interests", "C0001=1,C0002=0.4", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecommend([]string{"-interests", "C0001=1", "-strategy", "semantic", "-report", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecommend([]string{v1, v2}); err == nil {
		t.Fatal("empty interests must fail")
	}
	if err := cmdRecommend([]string{"-interests", "C0001=x", v1, v2}); err == nil {
		t.Fatal("bad weight must fail")
	}
	if err := cmdRecommend([]string{"-interests", "C0001=1", "-strategy", "bogus", v1, v2}); err == nil {
		t.Fatal("bad strategy must fail")
	}
}

func TestCmdTrend(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	if err := cmdTrend([]string{"-k", "2", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrend([]string{"-measure", "pagerank_shift", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrend([]string{"-measure", "bogus", v1, v2}); err == nil {
		t.Fatal("unknown measure must fail")
	}
	if err := cmdTrend([]string{v1}); err == nil {
		t.Fatal("single version must fail")
	}
}

func TestCmdArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	arch := filepath.Join(dir, "arch")
	if err := cmdArchive([]string{"-policy", "delta", "-out", arch, v1, v2}); err != nil {
		t.Fatal(err)
	}
	unpacked := filepath.Join(dir, "unpacked")
	if err := cmdArchive([]string{"-unpack", "-out", unpacked, arch}); err != nil {
		t.Fatal(err)
	}
	// The unpacked v1 must equal the original.
	orig, err := loadVersion(v1, "a")
	if err != nil {
		t.Fatal(err)
	}
	back, err := loadVersion(filepath.Join(unpacked, "v1.nt"), "b")
	if err != nil {
		t.Fatal(err)
	}
	if orig.Graph.Len() != back.Graph.Len() {
		t.Fatalf("unpacked v1 = %d triples, want %d", back.Graph.Len(), orig.Graph.Len())
	}
	if err := cmdArchive([]string{"-policy", "bogus", "-out", arch, v1}); err == nil {
		t.Fatal("bad policy must fail")
	}
	if err := cmdArchive([]string{"-unpack", "-out", unpacked}); err == nil {
		t.Fatal("unpack without dir must fail")
	}
}

func TestCmdReportAndSummarize(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	if err := cmdReport([]string{"-interests", "C0001=1", v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReport([]string{"-interests", "C0001=1", v1}); err == nil {
		t.Fatal("missing arg must fail")
	}
	if err := cmdSummarize([]string{"-k", "4", v1}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSummarize([]string{}); err == nil {
		t.Fatal("missing arg must fail")
	}
}

func TestParseInterests(t *testing.T) {
	p, err := parseInterests("u", "C0001=0.5, C0002 , http://x/abs=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.InterestIn(evorec.SchemaIRI("C0001")) != 0.5 {
		t.Fatal("weighted interest wrong")
	}
	if p.InterestIn(evorec.SchemaIRI("C0002")) != 1 {
		t.Fatal("bare interest must default to 1")
	}
	if p.InterestIn(evorec.NewIRI("http://x/abs")) != 2 {
		t.Fatal("absolute IRI interest wrong")
	}
	if _, err := parseInterests("u", ""); err == nil {
		t.Fatal("empty spec must fail")
	}
}

func TestCmdRecommendWithProfileFile(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	// Write a profile file through the public API.
	p := evorec.NewProfile("file-user")
	p.SetInterest(evorec.SchemaIRI("C0001"), 1)
	path := filepath.Join(dir, "profile.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := evorec.WriteProfileJSON(f, p); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := cmdRecommend([]string{"-profile", path, v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecommend([]string{"-profile", filepath.Join(dir, "missing.json"), v1, v2}); err == nil {
		t.Fatal("missing profile file must fail")
	}
}

func TestCmdServeFlagValidation(t *testing.T) {
	// Each case must fail fast — before any listener binds.
	cases := [][]string{
		{},                                   // no datasets at all
		{"-cache-cap", "0", "-mem", "kb"},    // invalid LRU capacity
		{"-feed-workers", "0", "-mem", "kb"}, // invalid worker pool
		{"-dataset", "noequals", "-mem", "kb"},
		{"-dataset", "kb=/nonexistent-store-dir"},
	}
	for _, args := range cases {
		if err := cmdServe(args); err == nil {
			t.Fatalf("cmdServe(%v) succeeded, want error", args)
		}
	}
}
