package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"evorec"
)

// benchResult is one benchmark's headline metrics, the unit of the perf
// trajectory artifact CI uploads per PR.
type benchResult struct {
	NsPerOp     int64 `json:"ns_op"`
	AllocsPerOp int64 `json:"allocs_op"`
	BytesPerOp  int64 `json:"bytes_op"`
}

// cmdBench runs the scoring-kernel benchmarks in-process (the hot paths the
// serving stack bottoms out in: point recommendation on the flat kernel and
// on the map reference path, engine notification, commit-triggered feed
// fan-out, and k-anonymization) and prints a table or, with -json, the
// machine-readable form CI archives as BENCH_5.json.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit JSON (benchmark name -> ns/op, allocs/op, bytes/op)")
	subscribers := fs.Int("subscribers", 10_000, "feed fan-out pool size (1% affected)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	vs, _, err := evorec.GenerateVersions(evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		return err
	}
	older, _ := vs.Get("v1")
	newer, _ := vs.Get("v2")
	ctx := evorec.NewMeasureContext(older, newer)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())
	idx := evorec.NewItemIndex(items)
	sch := evorec.ExtractSchema(older.Graph)
	pool, _, err := evorec.GenerateProfiles(sch,
		evorec.ProfileConfig{Users: 16, ExtraInterests: 2}, rand.New(rand.NewSource(2)))
	if err != nil {
		return err
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(vs); err != nil {
		return err
	}
	if _, err := eng.Items("v1", "v2"); err != nil {
		return err
	}

	// Feed fixture: 1% of the pool subscribes to the hottest scored entity,
	// the rest to a term outside every item vector — the fan-out scores
	// only the affected share (the BenchmarkFeedFanout shape, CI-sized).
	var hot evorec.Term
	hotW := 0.0
	for _, it := range items {
		for tm, w := range it.Vector {
			if w > hotW {
				hot, hotW = tm, w
			}
		}
	}
	if hotW == 0 {
		return fmt.Errorf("bench: no scored entity in items")
	}
	cold := evorec.SchemaIRI("FanoutColdRegion")
	fd, err := evorec.OpenFeed(evorec.FeedConfig{Threshold: 0.01, K: 1, MaxLog: 4})
	if err != nil {
		return err
	}
	affected := *subscribers / 100
	if affected < 1 {
		affected = 1
	}
	for i := 0; i < *subscribers; i++ {
		u := evorec.NewProfile(fmt.Sprintf("u%06d", i))
		if i < affected {
			u.SetInterest(hot, 1)
		} else {
			u.SetInterest(cold, 1)
		}
		if _, _, err := fd.Subscribe(u); err != nil {
			return err
		}
	}

	anonPool := pool
	if len(anonPool) > 16 {
		anonPool = anonPool[:16]
	}
	seq := 0

	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []namedBench{
		{"recommend_topk_flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx.TopK(pool[i%len(pool)], 3)
			}
		}},
		{"recommend_topk_map", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evorec.TopK(pool[i%len(pool)], items, 3)
			}
		}},
		{"notify_pool16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Notify(pool, "v1", "v2", 0.1, 3); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("feed_fanout_%dk_1pct", *subscribers/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// seq stays monotonic across the harness's b.N reruns: the
				// shared feed's idempotence ledger must never skip a pair.
				seq++
				st, err := fd.FanOutIndexed("v1", fmt.Sprintf("n%08d", seq), idx)
				if err != nil {
					b.Fatal(err)
				}
				if st.Affected != affected {
					b.Fatalf("affected = %d, want %d", st.Affected, affected)
				}
			}
		}},
		{"kanonymize_16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := evorec.KAnonymize(anonPool, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	out := make(map[string]benchResult, len(benches))
	for _, nb := range benches {
		r := testing.Benchmark(nb.fn)
		if r.N == 0 {
			// testing.Benchmark reports failure as a zero-value result
			// rather than an error; a zeroed entry would silently corrupt
			// the CI perf-trajectory artifact.
			return fmt.Errorf("bench: %s failed (no iterations completed)", nb.name)
		}
		out[nb.name] = benchResult{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if !*asJSON {
			fmt.Printf("%-28s %12d ns/op %10d B/op %8d allocs/op   (%d iterations)\n",
				nb.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp(), r.N)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"format":     "evorec-bench/v1",
			"benchmarks": out,
		})
	}
	return nil
}
