package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"evorec"
)

// benchResult is one benchmark's headline metrics, the unit of the perf
// trajectory artifact CI uploads per PR.
type benchResult struct {
	NsPerOp     int64 `json:"ns_op"`
	AllocsPerOp int64 `json:"allocs_op"`
	BytesPerOp  int64 `json:"bytes_op"`
}

// ingestBurst is the fixed unit of durable-ingestion work one benchmark
// iteration performs: 64 versions committed into a fresh disk-backed store.
const ingestBurst = 64

// ingestBody renders one full version body: a fixed base population plus a
// few sequence-unique triples, so consecutive versions delta-encode to a
// small constant-size change and the benchmark measures durability cost,
// not delta size.
func ingestBody(seq int) string {
	var sb strings.Builder
	for i := 0; i < 48; i++ {
		fmt.Fprintf(&sb, "<http://ex.org/i%03d> <http://ex.org/p%d> <http://ex.org/i%03d> .\n",
			i, i%4, (i*7)%48)
		fmt.Fprintf(&sb, "<http://ex.org/i%03d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/C%d> .\n",
			i, i%3)
	}
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&sb, "<http://ex.org/new%09d> <http://ex.org/p0> <http://ex.org/i%03d> .\n",
			seq*4+j, j)
	}
	return sb.String()
}

// ingestBenchFn builds the durable-ingestion benchmark at the given committer
// count: every commit is acknowledged only after its WAL record is fsynced,
// a reader keeps serving cached recommendations throughout, and ns/op is per
// 64-version burst. workers=1 is the serial fsync-per-commit baseline;
// workers=8 is the group-commit path the speedup figure compares against it.
func ingestBenchFn(workers int, reg *evorec.MetricsRegistry) func(b *testing.B) {
	return func(b *testing.B) {
		bodies := make([]string, ingestBurst+2)
		for i := range bodies {
			bodies[i] = ingestBody(i)
		}
		svc := evorec.NewService(evorec.ServiceConfig{Metrics: reg})
		defer svc.Close()
		var dirs []string
		defer func() {
			for _, d := range dirs {
				os.RemoveAll(d)
			}
		}()

		var cur atomic.Pointer[evorec.ServiceDataset]
		u := evorec.NewProfile("reader")
		u.SetInterest(evorec.SchemaIRI("C0"), 1)
		req := evorec.Request{OlderID: "v1", NewerID: "v2", K: 3}
		stop := make(chan struct{})
		readErr := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := cur.Load()
				if d == nil {
					continue
				}
				if _, err := d.Recommend(u, req); err != nil {
					readErr <- err
					return
				}
			}
		}()
		defer close(stop)

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "evorec-ingest-")
			if err != nil {
				b.Fatal(err)
			}
			dirs = append(dirs, dir)
			vs := evorec.NewVersionStore()
			g1 := evorec.NewGraph()
			if err := evorec.ReadNTriplesInto(g1, strings.NewReader(bodies[0])); err != nil {
				b.Fatal(err)
			}
			if err := vs.Add(&evorec.Version{ID: "v1", Graph: g1}); err != nil {
				b.Fatal(err)
			}
			if _, err := evorec.SaveStore(dir, vs, evorec.StoreOptions{Policy: evorec.StoreDeltaChain}); err != nil {
				b.Fatal(err)
			}
			d, err := svc.Open(fmt.Sprintf("ingest%06d", i), dir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Commit("v2", strings.NewReader(bodies[1])); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Recommend(u, req); err != nil {
				b.Fatal(err)
			}
			cur.Store(d)
			b.StartTimer()

			commitOne := func(k int64) error {
				_, err := d.Commit(fmt.Sprintf("c%03d", k), strings.NewReader(bodies[int(k)+2]))
				return err
			}
			if workers == 1 {
				for k := int64(0); k < ingestBurst; k++ {
					if err := commitOne(k); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				var next int64 = -1
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							k := atomic.AddInt64(&next, 1)
							if k >= ingestBurst {
								return
							}
							if err := commitOne(k); err != nil {
								errs <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				select {
				case err := <-errs:
					b.Fatal(err)
				default:
				}
			}
		}
		b.StopTimer()
		select {
		case err := <-readErr:
			b.Fatalf("reader failed during ingest: %v", err)
		default:
		}
	}
}

// cmdBench runs the scoring-kernel benchmarks in-process (the hot paths the
// serving stack bottoms out in: point recommendation on the flat kernel and
// on the map reference path, engine notification, commit-triggered feed
// fan-out, and k-anonymization) plus the durable-ingestion benchmarks
// (serial fsync-per-commit vs eight committers through the group-commit
// queue) and prints a table or, with -json, the machine-readable form CI
// archives as BENCH_7.json. The instrumented paths report into a live
// metrics registry whose snapshot rides along in the JSON, so throughput
// numbers can be read next to the WAL/fan-out counters that produced them.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit JSON (benchmark name -> ns/op, allocs/op, bytes/op)")
	subscribers := fs.Int("subscribers", 10_000, "feed fan-out pool size (1% affected)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	vs, _, err := evorec.GenerateVersions(evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 80, Locality: 0.8}, 1, 42)
	if err != nil {
		return err
	}
	older, _ := vs.Get("v1")
	newer, _ := vs.Get("v2")
	ctx := evorec.NewMeasureContext(older, newer)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())
	idx := evorec.NewItemIndex(items)
	sch := evorec.ExtractSchema(older.Graph)
	pool, _, err := evorec.GenerateProfiles(sch,
		evorec.ProfileConfig{Users: 16, ExtraInterests: 2}, rand.New(rand.NewSource(2)))
	if err != nil {
		return err
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(vs); err != nil {
		return err
	}
	if _, err := eng.Items("v1", "v2"); err != nil {
		return err
	}

	// Feed fixture: 1% of the pool subscribes to the hottest scored entity,
	// the rest to a term outside every item vector — the fan-out scores
	// only the affected share (the BenchmarkFeedFanout shape, CI-sized).
	var hot evorec.Term
	hotW := 0.0
	for _, it := range items {
		for tm, w := range it.Vector {
			if w > hotW {
				hot, hotW = tm, w
			}
		}
	}
	if hotW == 0 {
		return fmt.Errorf("bench: no scored entity in items")
	}
	reg := evorec.NewMetricsRegistry()
	cold := evorec.SchemaIRI("FanoutColdRegion")
	fd, err := evorec.OpenFeed(evorec.FeedConfig{
		Threshold: 0.01, K: 1, MaxLog: 4,
		Telemetry: evorec.NewFeedTelemetry(reg),
	})
	if err != nil {
		return err
	}
	affected := *subscribers / 100
	if affected < 1 {
		affected = 1
	}
	for i := 0; i < *subscribers; i++ {
		u := evorec.NewProfile(fmt.Sprintf("u%06d", i))
		if i < affected {
			u.SetInterest(hot, 1)
		} else {
			u.SetInterest(cold, 1)
		}
		if _, _, err := fd.Subscribe(u); err != nil {
			return err
		}
	}

	anonPool := pool
	if len(anonPool) > 16 {
		anonPool = anonPool[:16]
	}
	seq := 0

	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []namedBench{
		{"recommend_topk_flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx.TopK(pool[i%len(pool)], 3)
			}
		}},
		{"recommend_topk_map", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evorec.TopK(pool[i%len(pool)], items, 3)
			}
		}},
		{"notify_pool16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Notify(pool, "v1", "v2", 0.1, 3); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("feed_fanout_%dk_1pct", *subscribers/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// seq stays monotonic across the harness's b.N reruns: the
				// shared feed's idempotence ledger must never skip a pair.
				seq++
				st, err := fd.FanOutIndexed("v1", fmt.Sprintf("n%08d", seq), idx)
				if err != nil {
					b.Fatal(err)
				}
				if st.Affected != affected {
					b.Fatalf("affected = %d, want %d", st.Affected, affected)
				}
			}
		}},
		{"kanonymize_16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := evorec.KAnonymize(anonPool, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ingest_serial_burst64", ingestBenchFn(1, reg)},
		{"ingest_group8_burst64", ingestBenchFn(8, reg)},
	}

	out := make(map[string]benchResult, len(benches))
	for _, nb := range benches {
		r := testing.Benchmark(nb.fn)
		if r.N == 0 {
			// testing.Benchmark reports failure as a zero-value result
			// rather than an error; a zeroed entry would silently corrupt
			// the CI perf-trajectory artifact.
			return fmt.Errorf("bench: %s failed (no iterations completed)", nb.name)
		}
		out[nb.name] = benchResult{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if !*asJSON {
			fmt.Printf("%-28s %12d ns/op %10d B/op %8d allocs/op   (%d iterations)\n",
				nb.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp(), r.N)
		}
	}
	// The durability headline: committed-versions/sec through the group
	// committer relative to the serial fsync-per-commit baseline.
	speedup := float64(out["ingest_serial_burst64"].NsPerOp) /
		float64(out["ingest_group8_burst64"].NsPerOp)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"format":               "evorec-bench/v1",
			"benchmarks":           out,
			"ingest_group_speedup": speedup,
			// The registry snapshot after every benchmark ran: WAL fsync and
			// batch-size distributions, fan-out counts, cache hit/miss — the
			// internals behind the headline numbers, archived with them.
			"metrics": reg.Snapshot(),
		})
	}
	fmt.Printf("%-28s %12.2fx committed-versions/sec vs serial fsync-per-commit\n",
		"ingest_group_speedup", speedup)
	return nil
}
