package main

import (
	"flag"
	"fmt"

	"evorec"
)

// cmdReport prints the personalized evolution digest for a user over a
// version pair: the paper's end product in one command.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	k := fs.Int("k", 3, "measures to recommend inside the digest")
	interests := fs.String("interests", "", "comma-separated Class=weight interests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: evorec report -interests ... <older.nt> <newer.nt>")
	}
	older, err := loadVersion(fs.Arg(0), "older")
	if err != nil {
		return err
	}
	newer, err := loadVersion(fs.Arg(1), "newer")
	if err != nil {
		return err
	}
	user, err := parseInterests("cli-user", *interests)
	if err != nil {
		return err
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.Ingest(older); err != nil {
		return err
	}
	if err := eng.Ingest(newer); err != nil {
		return err
	}
	rep, err := eng.UserReport(user, evorec.Request{
		OlderID: older.ID, NewerID: newer.ID, K: *k,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// cmdSummarize prints the k-class relevance summary of one version.
func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	k := fs.Int("k", 10, "classes to include in the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evorec summarize [-k N] <version.nt>")
	}
	v, err := loadVersion(fs.Arg(0), "v")
	if err != nil {
		return err
	}
	s, err := evorec.Summarize(v.Graph, *k)
	if err != nil {
		return err
	}
	fmt.Printf("schema summary (%d selected + %d linking classes, instance coverage %.1f%%)\n",
		len(s.Selected), len(s.Linking), 100*s.InstanceCoverage)
	fmt.Println("classes by relevance:")
	for _, c := range s.Selected {
		fmt.Printf("  %-20s %.4f\n", c.Local(), s.Relevance[c])
	}
	if len(s.Linking) > 0 {
		fmt.Println("linking classes:")
		for _, c := range s.Linking {
			fmt.Printf("  %-20s %.4f\n", c.Local(), s.Relevance[c])
		}
	}
	fmt.Printf("edges: %d\n", len(s.Edges))
	for _, e := range s.Edges {
		fmt.Printf("  %s -- %s\n", e[0].Local(), e[1].Local())
	}
	return nil
}
