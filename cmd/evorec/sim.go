package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"evorec"
)

// cmdSim runs the deterministic workload simulator: a seeded weighted mix
// of API operations against a live service (in-process by default, or a
// remote server via -addr), with a shadow model checking cross-subsystem
// invariants and the server's own telemetry held to conservation laws. The
// operation schedule is a pure function of the generation flags — -duration
// is translated to an operation budget (rate × duration), never a
// wall-clock cutoff, so two runs with one seed produce byte-identical
// operation logs.
func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generation seed; equal seeds replay identical workloads")
	duration := fs.Duration("duration", 10*time.Second,
		"target run length; with -rate fixes the op budget (ignored when -ops is set)")
	rate := fs.Float64("rate", 200, "dispatch pace in operations/second (<= 0 = unpaced)")
	ops := fs.Int("ops", 0, "explicit operation budget (overrides -duration x -rate)")
	concurrency := fs.Int("concurrency", 8, "worker count (minimum 1)")
	mem := fs.Int("mem", 2, "in-memory datasets the mix may create over the API")
	users := fs.Int("users", 16, "subscriber pool size per dataset")
	parityEvery := fs.Int("parity-every", 4,
		"check every Nth plain recommend against the reference scorer (0 disables)")
	evolveOps := fs.Int("evolve-ops", 40, "synthetic change operations per committed version")
	chaos := fs.Int("chaos", 0,
		"seeded store-fault windows to schedule mid-run (0 disables; in-process only)")
	addr := fs.String("addr", "",
		"remote API base URL; empty boots an in-process server (backed dataset, strict oracle)")
	opsURL := fs.String("ops-url", "",
		"operator base URL for /metrics scraping with -addr (in-process runs wire it automatically)")
	oplog := fs.String("oplog", "", "write the deterministic operation log to this file")
	out := fs.String("out", "", "write the benchmark report JSON to this file")
	quiet := fs.Bool("quiet", false, "suppress the progress summary on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", *concurrency)
	}
	if *ops < 0 {
		return fmt.Errorf("-ops must be >= 0, got %d", *ops)
	}
	if *chaos < 0 {
		return fmt.Errorf("-chaos must be >= 0, got %d", *chaos)
	}
	if *chaos > 0 && *addr != "" {
		return fmt.Errorf("-chaos needs the in-process server (the fault injector wraps its filesystem); drop -addr")
	}
	numOps := *ops
	if numOps == 0 {
		if *rate <= 0 {
			return fmt.Errorf("-ops is required when -rate <= 0 (a duration alone cannot fix a deterministic budget)")
		}
		numOps = int(*rate * duration.Seconds())
		if numOps < 1 {
			numOps = 1
		}
	}

	cfg := evorec.SimConfig{
		Seed:         *seed,
		NumOps:       numOps,
		Rate:         *rate,
		Concurrency:  *concurrency,
		MemDatasets:  *mem,
		Users:        *users,
		ParityEvery:  *parityEvery,
		EvolveOps:    *evolveOps,
		ChaosWindows: *chaos,
	}
	if *addr == "" {
		cfg.BackedDatasets = 1
		cfg.Strict = true
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sim: "+format+"\n", args...)
		}
	}

	plan, err := evorec.BuildSimPlan(cfg)
	if err != nil {
		return err
	}
	if *oplog != "" {
		f, err := os.Create(*oplog)
		if err != nil {
			return err
		}
		if err := plan.WriteOpLog(f); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *addr == "" {
		srv, err := evorec.StartSimInProcess(plan, evorec.SimServerOptions{LogW: os.Stderr})
		if err != nil {
			return err
		}
		defer srv.Close() //nolint:errcheck // teardown of a temp stack
		cfg.BaseURL, cfg.OpsURL = srv.BaseURL, srv.OpsURL
		cfg.Fault = srv.Chaos
	} else {
		cfg.BaseURL, cfg.OpsURL = *addr, *opsURL
	}

	res, err := evorec.RunSim(cfg, plan)
	if err != nil {
		return err
	}
	rep := res.Report()
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("sim seed=%d ops=%d elapsed=%.2fs throughput=%.0f ops/s\n",
		res.Seed, res.Ops, res.Elapsed.Seconds(), float64(res.Ops)/res.Elapsed.Seconds())
	fmt.Printf("  checks=%d violations=%d parity=%d scrapes=%d traces=%d\n",
		res.Checks, res.Violations, res.Parity, res.Scrapes, res.TracesSeen)
	fmt.Printf("  commits: acked=%d 503=%d fanouts=%d notifications=%d\n",
		res.Commits2xx, res.Commits503, res.Fanouts, res.Notified)
	if res.ChaosWindows > 0 {
		fmt.Printf("  chaos: windows=%d degraded=%g healed=%g 503s busy=%d degraded=%d reads=%d\n",
			res.ChaosWindows, res.DegradedEntries, res.Heals,
			res.Commits503Busy, res.Commits503Degraded, res.Reads503)
	}
	kinds := make([]string, 0, len(res.PerOp))
	for k := range res.PerOp {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := res.PerOp[k]
		fmt.Printf("  %-16s n=%-5d p50=%.2fms p95=%.2fms p99=%.2fms\n",
			k, st.Count, st.P50Millis, st.P95Millis, st.P99Millis)
	}
	if res.Violations > 0 {
		for _, s := range res.Samples {
			fmt.Fprintln(os.Stderr, "sim: violation:", s)
		}
		return fmt.Errorf("%d invariant violations (%d checks)", res.Violations, res.Checks)
	}
	return nil
}
