package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCmdStorePackAndInspect(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := genTestVersions(t, dir)
	out := filepath.Join(dir, "segstore")
	if err := cmdStore([]string{"pack", "-policy", "delta", "-out", out, v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStore([]string{"inspect", out}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one segment: inspect must report failure via its exit error.
	path := filepath.Join(out, "v2.delta")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStore([]string{"inspect", out}); err == nil {
		t.Fatal("inspect of a corrupted store must fail")
	}
	// Usage errors.
	if err := cmdStore(nil); err == nil {
		t.Fatal("missing action must fail")
	}
	if err := cmdStore([]string{"bogus"}); err == nil {
		t.Fatal("unknown action must fail")
	}
	if err := cmdStore([]string{"inspect"}); err == nil {
		t.Fatal("inspect without dir must fail")
	}
	if err := cmdStore([]string{"pack", "-policy", "bogus", "-out", out, v1}); err == nil {
		t.Fatal("bad policy must fail")
	}
}
