package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"evorec"
)

// cmdStore groups operations on the binary segment store. "inspect" dumps a
// store directory's manifest and verifies every segment's framing and
// checksum; "pack" writes versions into a new store.
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: evorec store <inspect|pack> [flags]")
	}
	switch args[0] {
	case "inspect":
		return cmdStoreInspect(args[1:])
	case "pack":
		return cmdStorePack(args[1:])
	default:
		return fmt.Errorf("unknown store action %q (want inspect or pack)", args[0])
	}
}

func cmdStoreInspect(args []string) error {
	fs := flag.NewFlagSet("store inspect", flag.ExitOnError)
	cacheCap := fs.Int("cache-cap", 0,
		"materialize every version through an LRU of this capacity (minimum 1) and report cache stats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evorec store inspect [-cache-cap n] <dir>")
	}
	deep := flagWasSet(fs, "cache-cap")
	if deep {
		if err := validateCacheCap(*cacheCap); err != nil {
			return err
		}
	}
	info, err := evorec.InspectStore(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("format   %s\n", info.Format)
	fmt.Printf("policy   %s\n", info.Policy)
	fmt.Printf("terms    %d\n", info.Terms)
	fmt.Printf("versions %d (%d snapshots, %d deltas)\n",
		info.Versions, info.Snapshots, info.Deltas)
	fmt.Printf("bytes    %d\n\n", info.TotalBytes)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "segment\tkind\tid\tbytes\tcontents\tstatus")
	bad := 0
	for _, s := range info.Segments {
		contents := ""
		switch s.Kind {
		case "snapshot":
			contents = fmt.Sprintf("%d triples", s.Triples)
		case "delta":
			contents = fmt.Sprintf("+%d -%d", s.Added, s.Deleted)
		case "dict":
			contents = fmt.Sprintf("%d terms", info.Terms)
		}
		status := "ok"
		if !s.OK {
			status = "CORRUPT: " + s.Err
			bad++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%s\n", s.File, s.Kind, s.ID, s.Bytes, contents, status)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d segment(s) failed verification", bad)
	}
	if deep {
		// Deep verification: reconstruct every version through an LRU of the
		// requested capacity, proving the chain replays end to end.
		ds, err := evorec.OpenStore(fs.Arg(0))
		if err != nil {
			return err
		}
		if err := evorec.SetStoreCacheCap(ds, *cacheCap); err != nil {
			return err
		}
		fmt.Println()
		for i, id := range ds.IDs() {
			g, err := ds.GraphAt(i)
			if err != nil {
				return fmt.Errorf("materializing %s: %w", id, err)
			}
			fmt.Printf("materialized %-12s %d triples\n", id, g.Len())
		}
		hits, misses := evorec.StoreCacheStats(ds)
		fmt.Printf("cache cap=%d hits=%d misses=%d\n", evorec.StoreCacheCap(ds), hits, misses)
	}
	return nil
}

// cmdStorePack writes N-Triples version files into a binary store, the
// segment-level sibling of "archive -policy ...".
func cmdStorePack(args []string) error {
	fs := flag.NewFlagSet("store pack", flag.ExitOnError)
	policy := fs.String("policy", "hybrid", "storage policy: full, delta, or hybrid")
	every := fs.Int("every", 4, "snapshot period for the hybrid policy")
	out := fs.String("out", "store", "store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: evorec store pack [-policy p] -out <dir> <v1.nt> [more versions...]")
	}
	var pol evorec.StorePolicy
	switch *policy {
	case "full":
		pol = evorec.StoreFullSnapshots
	case "delta":
		pol = evorec.StoreDeltaChain
	case "hybrid":
		pol = evorec.StoreHybrid
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	vs := evorec.NewVersionStore()
	// One dictionary for the whole chain so versions delta-encode compactly.
	dict := evorec.NewDict()
	for i := 0; i < fs.NArg(); i++ {
		f, err := os.Open(fs.Arg(i))
		if err != nil {
			return err
		}
		g := evorec.NewGraphWithDict(dict)
		err = evorec.ReadNTriplesInto(g, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", fs.Arg(i), err)
		}
		if err := vs.Add(&evorec.Version{ID: fmt.Sprintf("v%d", i+1), Graph: g}); err != nil {
			return err
		}
	}
	man, err := evorec.SaveStore(*out, vs, evorec.StoreOptions{Policy: pol, SnapshotEvery: *every})
	if err != nil {
		return err
	}
	size, err := evorec.StoreDiskUsage(*out, man)
	if err != nil {
		return err
	}
	fmt.Printf("stored %d versions (%d terms) under %s policy into %s (%d bytes)\n",
		len(man.Entries), man.Terms, man.Policy, *out, size)
	return nil
}
