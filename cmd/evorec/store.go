package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"evorec"
)

// cmdStore groups operations on the binary segment store. "inspect" dumps a
// store directory's manifest and verifies every segment's framing and
// checksum; "pack" writes versions into a new store; "verify" checks every
// durability invariant including the write-ahead log and (optionally) a
// feed directory's fan-out ledger; "recover" replays the WAL (or, with
// -dry-run, prints what replay would do).
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: evorec store <inspect|pack|verify|recover> [flags]")
	}
	switch args[0] {
	case "inspect":
		return cmdStoreInspect(args[1:])
	case "pack":
		return cmdStorePack(args[1:])
	case "verify":
		return cmdStoreVerify(args[1:])
	case "recover":
		return cmdStoreRecover(args[1:])
	default:
		return fmt.Errorf("unknown store action %q (want inspect, pack, verify or recover)", args[0])
	}
}

// cmdStoreVerify checks a store directory read-only: manifest and segment
// framing/CRC, chain contiguity, dictionary coverage, WAL replayability,
// and — when -feed-dir names the dataset's feed directory — the fan-out
// ledger's consistency against the version chain.
func cmdStoreVerify(args []string) error {
	fs := flag.NewFlagSet("store verify", flag.ExitOnError)
	feedDir := fs.String("feed-dir", "",
		"also verify this feed directory and cross-check its fan-out ledger against the chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evorec store verify [-feed-dir d] <dir>")
	}
	rep, err := evorec.VerifyStore(fs.Arg(0))
	if err != nil {
		return err
	}
	okSegs := 0
	for _, s := range rep.Info.Segments {
		if s.OK {
			okSegs++
		}
	}
	fmt.Printf("manifest  %s, policy %s, %d versions, %d terms\n",
		rep.Info.Format, rep.Info.Policy, rep.Info.Versions, rep.Info.Terms)
	fmt.Printf("segments  %d/%d ok (%d bytes)\n", okSegs, len(rep.Info.Segments), rep.Info.TotalBytes)
	printWALPlan(rep.Plan)

	problems := append([]string(nil), rep.Problems...)
	if *feedDir != "" {
		fi, err := evorec.VerifyFeedDir(*feedDir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("feed: %v", err))
		} else {
			fmt.Printf("feed      %d subscribers, %d logs, %d entries, %d fanned-out pairs\n",
				fi.Subscribers, fi.Logs, fi.Entries, len(fi.Pairs))
			problems = append(problems, checkLedger(fi, rep)...)
		}
	}
	if len(problems) > 0 {
		fmt.Println()
		for _, p := range problems {
			fmt.Printf("PROBLEM: %s\n", p)
		}
		return fmt.Errorf("%d problem(s) found", len(problems))
	}
	fmt.Println("ok")
	return nil
}

// checkLedger cross-checks the feed's fan-out ledger against the version
// chain: every delivered pair must be two consecutive stored versions.
func checkLedger(fi *evorec.FeedVerifyInfo, rep *evorec.StoreVerifyReport) []string {
	pos := make(map[string]int, len(rep.Info.Segments))
	i := 0
	for _, s := range rep.Info.Segments {
		if s.ID != "" {
			pos[s.ID] = i
			i++
		}
	}
	var problems []string
	for _, p := range fi.Pairs {
		po, okO := pos[p[0]]
		pn, okN := pos[p[1]]
		switch {
		case !okO || !okN:
			problems = append(problems,
				fmt.Sprintf("feed ledger pair %s -> %s references versions the store does not hold", p[0], p[1]))
		case pn != po+1:
			problems = append(problems,
				fmt.Sprintf("feed ledger pair %s -> %s is not consecutive in the chain", p[0], p[1]))
		}
	}
	for _, p := range fi.PendingPairs {
		fmt.Printf("note: pair %s -> %s is delivered in logs but not in the ledger (crash window; a re-run fan-out would re-deliver)\n",
			p[0], p[1])
	}
	return problems
}

func printWALPlan(plan *evorec.StoreRecoverPlan) {
	applied, replayable, orphaned := 0, 0, 0
	for _, r := range plan.Records {
		switch r.Status {
		case evorec.StoreWALApplied:
			applied++
		case evorec.StoreWALReplayable:
			replayable++
		case evorec.StoreWALOrphaned:
			orphaned++
		}
	}
	torn := ""
	if plan.TornBytes > 0 {
		torn = fmt.Sprintf(", torn tail %d bytes", plan.TornBytes)
	}
	fmt.Printf("wal       %d bytes, %d records (%d applied, %d replayable, %d orphaned)%s\n",
		plan.WALBytes, len(plan.Records), applied, replayable, orphaned, torn)
}

// cmdStoreRecover replays a store's write-ahead log: with -dry-run it only
// prints what replay would apply; without, it opens the store (which runs
// recovery and checkpoints) and reports what happened.
func cmdStoreRecover(args []string) error {
	fs := flag.NewFlagSet("store recover", flag.ExitOnError)
	dryRun := fs.Bool("dry-run", false, "print what replay would do without writing anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evorec store recover [-dry-run] <dir>")
	}
	dir := fs.Arg(0)
	plan, err := evorec.PlanStoreRecovery(dir)
	if err != nil {
		return err
	}
	printWALPlan(plan)
	for _, r := range plan.Records {
		fmt.Printf("  seq %-4d %-10s %-12s parent %-12s %s (%d bytes, %d new terms)\n",
			r.Seq, r.Status, r.ID, r.Parent, r.Kind, r.Bytes, r.Terms)
	}
	if *dryRun {
		if len(plan.Apply) == 0 {
			fmt.Println("dry run: nothing to replay")
		} else {
			fmt.Printf("dry run: replay would apply %d version(s): %v (chain tail %s)\n",
				len(plan.Apply), plan.Apply, plan.Tail)
		}
		return nil
	}
	ds, err := evorec.OpenStore(dir) // Open replays the WAL and checkpoints
	if err != nil {
		return err
	}
	defer ds.Close()
	if len(plan.Apply) == 0 {
		fmt.Println("nothing to replay; store is clean")
	} else {
		fmt.Printf("recovered %d version(s); chain tail %s, WAL truncated\n", len(plan.Apply), plan.Tail)
	}
	return nil
}

func cmdStoreInspect(args []string) error {
	fs := flag.NewFlagSet("store inspect", flag.ExitOnError)
	cacheCap := fs.Int("cache-cap", 0,
		"materialize every version through an LRU of this capacity (minimum 1) and report cache stats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evorec store inspect [-cache-cap n] <dir>")
	}
	deep := flagWasSet(fs, "cache-cap")
	if deep {
		if err := validateCacheCap(*cacheCap); err != nil {
			return err
		}
	}
	info, err := evorec.InspectStore(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("format   %s\n", info.Format)
	fmt.Printf("policy   %s\n", info.Policy)
	fmt.Printf("terms    %d\n", info.Terms)
	fmt.Printf("versions %d (%d snapshots, %d deltas)\n",
		info.Versions, info.Snapshots, info.Deltas)
	fmt.Printf("bytes    %d\n\n", info.TotalBytes)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "segment\tkind\tid\tbytes\tcontents\tstatus")
	bad := 0
	for _, s := range info.Segments {
		contents := ""
		switch s.Kind {
		case "snapshot":
			contents = fmt.Sprintf("%d triples", s.Triples)
		case "delta":
			contents = fmt.Sprintf("+%d -%d", s.Added, s.Deleted)
		case "dict":
			contents = fmt.Sprintf("%d terms", info.Terms)
		}
		status := "ok"
		if !s.OK {
			status = "CORRUPT: " + s.Err
			bad++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%s\n", s.File, s.Kind, s.ID, s.Bytes, contents, status)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d segment(s) failed verification", bad)
	}
	if deep {
		// Deep verification: reconstruct every version through an LRU of the
		// requested capacity, proving the chain replays end to end.
		ds, err := evorec.OpenStore(fs.Arg(0))
		if err != nil {
			return err
		}
		if err := evorec.SetStoreCacheCap(ds, *cacheCap); err != nil {
			return err
		}
		fmt.Println()
		for i, id := range ds.IDs() {
			g, err := ds.GraphAt(i)
			if err != nil {
				return fmt.Errorf("materializing %s: %w", id, err)
			}
			fmt.Printf("materialized %-12s %d triples\n", id, g.Len())
		}
		hits, misses := evorec.StoreCacheStats(ds)
		fmt.Printf("cache cap=%d hits=%d misses=%d\n", evorec.StoreCacheCap(ds), hits, misses)
	}
	return nil
}

// cmdStorePack writes N-Triples version files into a binary store, the
// segment-level sibling of "archive -policy ...".
func cmdStorePack(args []string) error {
	fs := flag.NewFlagSet("store pack", flag.ExitOnError)
	policy := fs.String("policy", "hybrid", "storage policy: full, delta, or hybrid")
	every := fs.Int("every", 4, "snapshot period for the hybrid policy")
	out := fs.String("out", "store", "store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: evorec store pack [-policy p] -out <dir> <v1.nt> [more versions...]")
	}
	var pol evorec.StorePolicy
	switch *policy {
	case "full":
		pol = evorec.StoreFullSnapshots
	case "delta":
		pol = evorec.StoreDeltaChain
	case "hybrid":
		pol = evorec.StoreHybrid
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	vs := evorec.NewVersionStore()
	// One dictionary for the whole chain so versions delta-encode compactly.
	dict := evorec.NewDict()
	for i := 0; i < fs.NArg(); i++ {
		f, err := os.Open(fs.Arg(i))
		if err != nil {
			return err
		}
		g := evorec.NewGraphWithDict(dict)
		err = evorec.ReadNTriplesInto(g, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", fs.Arg(i), err)
		}
		if err := vs.Add(&evorec.Version{ID: fmt.Sprintf("v%d", i+1), Graph: g}); err != nil {
			return err
		}
	}
	man, err := evorec.SaveStore(*out, vs, evorec.StoreOptions{Policy: pol, SnapshotEvery: *every})
	if err != nil {
		return err
	}
	size, err := evorec.StoreDiskUsage(*out, man)
	if err != nil {
		return err
	}
	fmt.Printf("stored %d versions (%d terms) under %s policy into %s (%d bytes)\n",
		len(man.Entries), man.Terms, man.Policy, *out, size)
	return nil
}
