// Command evorec is the CLI front-end of the evolution-measure recommender.
//
// Subcommands:
//
//	generate   write a synthetic evolving dataset as N-Triples files
//	diff       print delta statistics and high-level changes of two versions
//	measures   print the top-k entities of every evolution measure
//	recommend  recommend measures for a user's interests
//	trend      analyze change trends over a chain of versions
//	archive    pack/unpack versions under an archiving policy
//	store      pack, inspect, verify, or recover the binary segment store
//	report     personalized evolution digest for a user
//	summarize  relevance-based schema summary of one version
//	serve      run the HTTP evolution service over stored datasets
//	bench      run the scoring-kernel benchmarks (-json for CI artifacts)
//	sim        deterministic workload soak against a live service
//
// Run "evorec <subcommand> -h" for flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"evorec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "measures":
		err = cmdMeasures(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "trend":
		err = cmdTrend(os.Args[2:])
	case "archive":
		err = cmdArchive(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "evorec: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evorec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: evorec <subcommand> [flags]

subcommands:
  generate   write a synthetic evolving dataset as N-Triples files
  diff       print delta statistics and high-level changes of two versions
  measures   print the top-k entities of every evolution measure
  recommend  recommend measures for a user's interests
  trend      analyze change trends over a chain of versions
  archive    pack/unpack versions under an archiving policy
  store      pack, inspect, verify, or recover the binary segment store
  report     personalized evolution digest for a user
  summarize  relevance-based schema summary of one version
  serve      run the HTTP evolution service over stored datasets
  bench      run the scoring-kernel benchmarks (-json for CI artifacts)
  sim        deterministic workload soak against a live service`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", ".", "output directory for vN.nt files")
	preset := fs.String("preset", "small", "KB preset: small or dbpedia")
	steps := fs.Int("steps", 3, "number of evolution steps")
	ops := fs.Int("ops", 100, "change operations per step")
	locality := fs.Float64("locality", 0.8, "change locality in [0,1]")
	seed := fs.Int64("seed", 42, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var kb evorec.KBConfig
	switch *preset {
	case "small":
		kb = evorec.SmallKB()
	case "dbpedia":
		kb = evorec.DBpediaLikeKB()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	vs, focuses, err := evorec.GenerateVersions(kb,
		evorec.EvolveConfig{Ops: *ops, Locality: *locality}, *steps, *seed)
	if err != nil {
		return err
	}
	for _, id := range vs.IDs() {
		v, _ := vs.Get(id)
		path := filepath.Join(*out, id+".nt")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := evorec.WriteNTriples(f, v.Graph); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d triples)\n", path, v.Graph.Len())
	}
	for i, f := range focuses {
		fmt.Printf("step %d change burst centered on %s\n", i+1, f.Local())
	}
	return nil
}

func loadVersion(path, id string) (*evorec.Version, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := evorec.ReadNTriples(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &evorec.Version{ID: id, Graph: g}, nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: evorec diff <older.nt> <newer.nt>")
	}
	older, err := loadVersion(fs.Arg(0), "older")
	if err != nil {
		return err
	}
	newer, err := loadVersion(fs.Arg(1), "newer")
	if err != nil {
		return err
	}
	d := evorec.ComputeDelta(older.Graph, newer.Graph)
	fmt.Printf("|δ+| = %d   |δ−| = %d   |δ| = %d\n",
		len(d.Added), len(d.Deleted), d.Size())
	changes := evorec.DetectHighLevel(older.Graph, newer.Graph)
	fmt.Printf("high-level changes: %d\n", len(changes))
	for _, c := range changes {
		fmt.Println(" ", c)
	}
	return nil
}

func cmdMeasures(args []string) error {
	fs := flag.NewFlagSet("measures", flag.ExitOnError)
	k := fs.Int("k", 5, "entities to show per measure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: evorec measures [-k N] <older.nt> <newer.nt>")
	}
	older, err := loadVersion(fs.Arg(0), "older")
	if err != nil {
		return err
	}
	newer, err := loadVersion(fs.Arg(1), "newer")
	if err != nil {
		return err
	}
	ctx := evorec.NewMeasureContext(older, newer)
	for _, m := range evorec.DefaultMeasures() {
		fmt.Printf("%s — %s\n", m.ID(), m.Name())
		scores := m.Compute(ctx)
		for _, e := range scores.Rank().TopK(*k) {
			if e.Score == 0 {
				break
			}
			fmt.Printf("  %-30s %.4f\n", e.Term.Local(), e.Score)
		}
	}
	return nil
}

// parseInterests parses "Class=0.9,OtherClass=0.4" into a profile — the
// grammar shared with the HTTP API's interests= parameter.
func parseInterests(id, spec string) (*evorec.Profile, error) {
	return evorec.ParseInterests(id, spec)
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	k := fs.Int("k", 3, "measures to recommend")
	interests := fs.String("interests", "", "comma-separated Class=weight interests")
	profilePath := fs.String("profile", "", "JSON profile file (alternative to -interests)")
	strategy := fs.String("strategy", "plain", "plain|mmr|maxmin|novelty|semantic")
	lambda := fs.Float64("lambda", 0.5, "MMR relevance/diversity mix")
	report := fs.Bool("report", false, "print the transparency report for the recommendation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: evorec recommend [flags] <older.nt> <newer.nt>")
	}
	older, err := loadVersion(fs.Arg(0), "older")
	if err != nil {
		return err
	}
	newer, err := loadVersion(fs.Arg(1), "newer")
	if err != nil {
		return err
	}
	user, err := loadUser(*profilePath, *interests)
	if err != nil {
		return err
	}
	var strat evorec.Strategy
	switch *strategy {
	case "plain":
		strat = evorec.Plain
	case "mmr":
		strat = evorec.DiverseMMR
	case "maxmin":
		strat = evorec.DiverseMaxMin
	case "novelty":
		strat = evorec.NoveltyAware
	case "semantic":
		strat = evorec.SemanticDiverse
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.Ingest(older); err != nil {
		return err
	}
	if err := eng.Ingest(newer); err != nil {
		return err
	}
	recs, err := eng.Recommend(user, evorec.Request{
		OlderID: older.ID, NewerID: newer.ID, K: *k,
		Strategy: strat, Lambda: *lambda,
	})
	if err != nil {
		return err
	}
	items, err := eng.Items(older.ID, newer.ID)
	if err != nil {
		return err
	}
	fmt.Printf("recommended measures for interests %q (strategy=%s):\n", *interests, strat)
	for rank, r := range recs {
		var name string
		for _, it := range items {
			if it.ID() == r.MeasureID {
				name = it.Measure.Name()
			}
		}
		fmt.Printf("  %d. %-28s %s (score %.3f)\n", rank+1, r.MeasureID, name, r.Score)
	}
	if *report {
		artifact := fmt.Sprintf("rec:%s:%s->%s:%s", user.ID, older.ID, newer.ID, strat)
		fmt.Println()
		fmt.Print(eng.Provenance().Report(artifact))
	}
	return nil
}

// writeGraphFile writes one graph as sorted N-Triples under dir/name,
// creating dir if needed.
func writeGraphFile(dir, name string, g *evorec.Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := evorec.WriteNTriples(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadUser resolves the user profile: from a JSON file when -profile is
// given, else from the -interests spec.
func loadUser(profilePath, interests string) (*evorec.Profile, error) {
	if profilePath != "" {
		f, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return evorec.ReadProfileJSON(f)
	}
	return parseInterests("cli-user", interests)
}
