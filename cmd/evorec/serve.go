package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"evorec"
)

// repeatedFlag collects a repeatable -flag value.
type repeatedFlag []string

func (f *repeatedFlag) String() string { return strings.Join(*f, ",") }

func (f *repeatedFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// flagWasSet reports whether the named flag was given explicitly, so the
// commands can distinguish "use the default" from a user-provided value
// that must be validated.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// validateCacheCap rejects capacities below 1 with a clear error; silent
// clamping would hide a misconfigured service.
func validateCacheCap(n int) error {
	if n < 1 {
		return fmt.Errorf("-cache-cap must be >= 1, got %d", n)
	}
	return nil
}

// cmdServe runs the HTTP evolution service: a registry of named datasets
// (binary store directories and/or empty in-memory datasets) behind the
// JSON API of internal/server, with subscription feeds persisted under
// -feed-dir. SIGINT/SIGTERM shut down gracefully: the listener stops,
// in-flight requests drain, and every dataset's feed logs are flushed.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheCap := fs.Int("cache-cap", evorec.StoreDefaultCacheCap,
		"store LRU capacity per disk-backed dataset (minimum 1)")
	feedDir := fs.String("feed-dir", "",
		"directory for per-dataset subscriber registries and feed logs (empty = in-memory feeds)")
	feedWorkers := fs.Int("feed-workers", evorec.FeedDefaultWorkers,
		"fan-out worker pool size per dataset (minimum 1)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var datasets, mems repeatedFlag
	fs.Var(&datasets, "dataset", "name=dir of a binary store to serve (repeatable)")
	fs.Var(&mems, "mem", "name of an empty in-memory dataset to create (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateCacheCap(*cacheCap); err != nil {
		return err
	}
	if *feedWorkers < 1 {
		return fmt.Errorf("-feed-workers must be >= 1, got %d", *feedWorkers)
	}
	if len(datasets) == 0 && len(mems) == 0 {
		return fmt.Errorf("usage: evorec serve [-addr a] [-cache-cap n] [-feed-dir d] -dataset name=dir [-mem name]")
	}
	svc := evorec.NewService(evorec.ServiceConfig{
		CacheCap: *cacheCap, FeedDir: *feedDir, FeedWorkers: *feedWorkers,
	})
	for _, spec := range datasets {
		name, dir, found := strings.Cut(spec, "=")
		if !found || name == "" || dir == "" {
			return fmt.Errorf("-dataset %q must look like name=dir", spec)
		}
		d, err := svc.Open(name, dir)
		if err != nil {
			return err
		}
		fmt.Printf("serving dataset %q from %s (%d versions, %d subscribers)\n",
			name, dir, len(d.Versions()), d.Feed().Len())
	}
	for _, name := range mems {
		if _, err := svc.Create(name); err != nil {
			return err
		}
		fmt.Printf("serving empty in-memory dataset %q\n", name)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Server-side timeouts keep one slow or stalled client from pinning a
	// connection (and its handler goroutine) forever: headers must arrive
	// promptly, a whole request body within ReadTimeout (commit bodies are
	// bounded at 128 MiB, well within it on any practical link), and
	// responses must be consumed. Idle keep-alive connections are recycled.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           evorec.NewHTTPServer(svc),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("evorec service listening on http://%s/v1/datasets\n", *addr)
	select {
	case err := <-errc:
		// The listener failed on its own (port taken, ...); nothing is
		// serving, so there is nothing to drain.
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard
	fmt.Println("evorec: shutting down, draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Persist what we can even when the drain timed out: Close drains the
		// commit queues, checkpoints every store's WAL and flushes the feeds.
		if cerr := svc.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	if err := svc.Close(); err != nil {
		return err
	}
	fmt.Println("evorec: stores checkpointed, feed logs flushed, bye")
	return nil
}
