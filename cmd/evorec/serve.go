package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"evorec"
)

// repeatedFlag collects a repeatable -flag value.
type repeatedFlag []string

func (f *repeatedFlag) String() string { return strings.Join(*f, ",") }

func (f *repeatedFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// flagWasSet reports whether the named flag was given explicitly, so the
// commands can distinguish "use the default" from a user-provided value
// that must be validated.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// parseRouteTimeouts resolves -route-timeout specs: a bare duration sets
// the default for every route, route=duration overrides one route label.
func parseRouteTimeouts(specs []string) (def time.Duration, perRoute map[string]time.Duration, err error) {
	for _, spec := range specs {
		route, durSpec, found := strings.Cut(spec, "=")
		if !found {
			if def, err = time.ParseDuration(spec); err != nil {
				return 0, nil, fmt.Errorf("-route-timeout %q is not a duration", spec)
			}
			continue
		}
		d, err := time.ParseDuration(durSpec)
		if err != nil {
			return 0, nil, fmt.Errorf("-route-timeout %q: %q is not a duration", spec, durSpec)
		}
		if perRoute == nil {
			perRoute = make(map[string]time.Duration)
		}
		perRoute[route] = d
	}
	return def, perRoute, nil
}

// validateCacheCap rejects capacities below 1 with a clear error; silent
// clamping would hide a misconfigured service.
func validateCacheCap(n int) error {
	if n < 1 {
		return fmt.Errorf("-cache-cap must be >= 1, got %d", n)
	}
	return nil
}

// cmdServe runs the HTTP evolution service: a registry of named datasets
// (binary store directories and/or empty in-memory datasets) behind the
// JSON API of internal/server, with subscription feeds persisted under
// -feed-dir. Every request is instrumented into the process metrics
// registry (GET /metrics on the API port; -ops-addr adds a separate
// operator listener with pprof and expvar) and logged structurally through
// slog. SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight
// requests drain, and every dataset's feed logs are flushed.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	opsAddr := fs.String("ops-addr", "",
		"operator listen address for /metrics, /healthz, /debug/pprof and /debug/vars (empty = no ops listener)")
	retryAfter := fs.Int("retry-after", evorec.DefaultRetryAfterSeconds,
		"Retry-After seconds sent with 503 responses when a commit queue saturates (minimum 1)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	cacheCap := fs.Int("cache-cap", evorec.StoreDefaultCacheCap,
		"store LRU capacity per disk-backed dataset (minimum 1)")
	feedDir := fs.String("feed-dir", "",
		"directory for per-dataset subscriber registries and feed logs (empty = in-memory feeds)")
	feedWorkers := fs.Int("feed-workers", evorec.FeedDefaultWorkers,
		"fan-out worker pool size per dataset (minimum 1)")
	traceSample := fs.Float64("trace-sample", 1,
		"fraction of requests traced end to end (0 disables minted traces; inbound sampled traceparents are always honored)")
	traceRing := fs.Int("trace-ring", evorec.DefaultTraceRing,
		"completed traces retained for GET /debug/traces (minimum 1)")
	traceSlow := fs.Duration("trace-slow", time.Second,
		"log any sampled trace slower than this as a structured warning (0 disables)")
	latencyBuckets := fs.String("latency-buckets", "",
		"comma-separated HTTP latency histogram bucket bounds in seconds, strictly increasing (empty = default schedule)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 0,
		"bound on closing datasets at shutdown (checkpoints + feed flushes); 0 waits indefinitely; datasets still draining at the deadline are logged and abandoned")
	buildConcurrency := fs.Int("build-concurrency", evorec.DefaultBuildConcurrency,
		"concurrent cold pair builds before read requests shed with 503 (negative = unlimited)")
	healBackoff := fs.Duration("heal-backoff", evorec.DefaultHealBackoff,
		"initial retry delay of the degraded-dataset heal probe (doubles with jitter per failed attempt)")
	healBackoffMax := fs.Duration("heal-backoff-max", evorec.DefaultHealBackoffMax,
		"cap on the heal probe's retry delay")
	var datasets, mems repeatedFlag
	var routeTimeouts repeatedFlag
	fs.Var(&datasets, "dataset", "name=dir of a binary store to serve (repeatable)")
	fs.Var(&mems, "mem", "name of an empty in-memory dataset to create (repeatable)")
	fs.Var(&routeTimeouts, "route-timeout",
		"per-request deadline as a bare duration for every route, or route=duration for one route label (repeatable; route 0 disables; expired deadlines answer 504)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateCacheCap(*cacheCap); err != nil {
		return err
	}
	if *feedWorkers < 1 {
		return fmt.Errorf("-feed-workers must be >= 1, got %d", *feedWorkers)
	}
	if *retryAfter < 1 {
		return fmt.Errorf("-retry-after must be >= 1, got %d", *retryAfter)
	}
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0, 1], got %g", *traceSample)
	}
	if *traceRing < 1 {
		return fmt.Errorf("-trace-ring must be >= 1, got %d", *traceRing)
	}
	if *traceSlow < 0 {
		return fmt.Errorf("-trace-slow must be >= 0, got %s", *traceSlow)
	}
	switch *logLevel {
	case "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("-log-level must be debug, info, warn or error, got %q", *logLevel)
	}
	var buckets []float64
	if *latencyBuckets != "" {
		var err error
		if buckets, err = evorec.ParseLatencyBuckets(*latencyBuckets); err != nil {
			return fmt.Errorf("-latency-buckets: %w", err)
		}
	}
	if *healBackoff <= 0 {
		return fmt.Errorf("-heal-backoff must be > 0, got %s", *healBackoff)
	}
	if *healBackoffMax < *healBackoff {
		return fmt.Errorf("-heal-backoff-max (%s) must be >= -heal-backoff (%s)", *healBackoffMax, *healBackoff)
	}
	defRouteTimeout, perRouteTimeouts, err := parseRouteTimeouts(routeTimeouts)
	if err != nil {
		return err
	}
	if len(datasets) == 0 && len(mems) == 0 {
		return fmt.Errorf("usage: evorec serve [-addr a] [-ops-addr a] [-cache-cap n] [-feed-dir d] -dataset name=dir [-mem name]")
	}

	logger := evorec.NewLogger(os.Stderr, *logLevel)
	reg := evorec.NewMetricsRegistry()
	reg.PublishExpvar("evorec")
	tracer := evorec.NewTracer(evorec.TracerConfig{
		SampleRate:    *traceSample,
		RingSize:      *traceRing,
		SlowThreshold: *traceSlow,
		Logger:        logger,
	})

	svc := evorec.NewService(evorec.ServiceConfig{
		CacheCap: *cacheCap, FeedDir: *feedDir, FeedWorkers: *feedWorkers,
		Metrics: reg, Tracer: tracer, Logger: logger,
		BuildConcurrency: *buildConcurrency,
		HealBackoff:      *healBackoff, HealBackoffMax: *healBackoffMax,
	})
	for _, spec := range datasets {
		name, dir, found := strings.Cut(spec, "=")
		if !found || name == "" || dir == "" {
			return fmt.Errorf("-dataset %q must look like name=dir", spec)
		}
		start := time.Now()
		d, err := svc.Open(name, dir)
		if err != nil {
			logger.Error("dataset open failed", "dataset", name, "dir", dir, "error", err)
			return err
		}
		logger.Info("dataset opened",
			"dataset", name, "dir", dir,
			"versions", len(d.Versions()), "subscribers", d.Feed().Len(),
			"duration", time.Since(start))
	}
	for _, name := range mems {
		if _, err := svc.Create(name); err != nil {
			logger.Error("dataset create failed", "dataset", name, "error", err)
			return err
		}
		logger.Info("dataset created", "dataset", name, "kind", "memory")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Server-side timeouts keep one slow or stalled client from pinning a
	// connection (and its handler goroutine) forever: headers must arrive
	// promptly, a whole request body within ReadTimeout (commit bodies are
	// bounded at 128 MiB, well within it on any practical link), and
	// responses must be consumed. Idle keep-alive connections are recycled.
	srv := &http.Server{
		Addr: *addr,
		Handler: evorec.NewHTTPServerWithConfig(svc, evorec.HTTPServerConfig{
			RetryAfterSeconds: *retryAfter,
			Metrics:           reg,
			Logger:            logger,
			Tracer:            tracer,
			LatencyBuckets:    buckets,
			RouteTimeout:      defRouteTimeout,
			RouteTimeouts:     perRouteTimeouts,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// The ops listener carries the operator surface (pprof, expvar, metrics,
	// health) on its own port, so exposure is decided separately from the
	// public API — bind it to loopback and the profiling endpoints never
	// leave the host.
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = &http.Server{
			Addr: *opsAddr,
			Handler: evorec.NewOpsMuxWithConfig(evorec.OpsMuxConfig{
				Registry: reg,
				Tracer:   tracer,
				Info:     evorec.ServiceBuildInfo("evorec"),
				Dynamic: func() map[string]any {
					return map[string]any{"datasets": len(svc.Names())}
				},
				Ready: svc.Ready,
			}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			// A dead ops listener degrades observability, not service; log
			// and keep serving the API.
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "addr", *opsAddr, "error", err)
			}
		}()
		logger.Info("ops listener up", "addr", *opsAddr,
			"endpoints", "/metrics /healthz /readyz /debug/traces /debug/pprof /debug/vars")
	}
	logger.Info("service listening", "addr", *addr, "retry_after", *retryAfter,
		"trace_sample", *traceSample)

	select {
	case err := <-errc:
		// The listener failed on its own (port taken, ...); nothing is
		// serving, so there is nothing to drain.
		logger.Error("listener failed", "addr", *addr, "error", err)
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard
	logger.Info("shutting down", "drain_timeout", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if opsSrv != nil {
		opsSrv.Close() //nolint:errcheck // operator surface; nothing to drain
	}
	// closeSvc bounds the dataset close (commit-queue drain, checkpoint,
	// feed flush) with -shutdown-timeout; datasets still draining at the
	// deadline are logged by name and abandoned — the process is exiting,
	// and their WALs replay the unfolded tail on the next open.
	closeSvc := func() error {
		if *shutdownTimeout <= 0 {
			return svc.Close()
		}
		abandoned, err := svc.CloseTimeout(*shutdownTimeout)
		for _, name := range abandoned {
			logger.Error("shutdown timeout: dataset abandoned mid-close; its WAL replays on next open",
				"dataset", name, "timeout", *shutdownTimeout)
		}
		return err
	}
	start := time.Now()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Persist what we can even when the drain timed out: Close drains the
		// commit queues, checkpoints every store's WAL and flushes the feeds.
		logger.Error("drain timed out; closing anyway", "error", err, "duration", time.Since(start))
		if cerr := closeSvc(); cerr != nil {
			logger.Error("close failed", "error", cerr)
			return errors.Join(err, cerr)
		}
		return err
	}
	logger.Info("requests drained", "duration", time.Since(start))
	start = time.Now()
	if err := closeSvc(); err != nil {
		logger.Error("close failed", "error", err)
		return err
	}
	logger.Info("shutdown complete", "close_duration", time.Since(start),
		"note", "stores checkpointed, feed logs flushed")
	return nil
}
