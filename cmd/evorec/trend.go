package main

import (
	"flag"
	"fmt"

	"evorec"
)

// cmdTrend analyzes change trends over a chain of N-Triples version files
// given in evolution order.
func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	measureID := fs.String("measure", "change_count", "measure to track over the chain")
	k := fs.Int("k", 5, "entities to show per report section")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: evorec trend [-measure id] <v1.nt> <v2.nt> [more versions...]")
	}
	var m evorec.Measure
	for _, cand := range evorec.ExtendedMeasures() {
		if cand.ID() == *measureID {
			m = cand
		}
	}
	if m == nil {
		return fmt.Errorf("unknown measure %q (see 'evorec measures')", *measureID)
	}
	vs := evorec.NewVersionStore()
	for i := 0; i < fs.NArg(); i++ {
		v, err := loadVersion(fs.Arg(i), fmt.Sprintf("v%d", i+1))
		if err != nil {
			return err
		}
		if err := vs.Add(v); err != nil {
			return err
		}
	}
	a, err := evorec.AnalyzeTrend(vs, m)
	if err != nil {
		return err
	}
	fmt.Printf("trend of %s over %d version pairs (%d entities tracked)\n\n",
		a.MeasureID, len(a.PairIDs), a.Len())
	fmt.Println("trend shapes:")
	counts := a.ShapeCounts()
	for _, sh := range []evorec.TrendShape{
		evorec.TrendQuiet, evorec.TrendRising, evorec.TrendFalling,
		evorec.TrendBursty, evorec.TrendSteady,
	} {
		fmt.Printf("  %-8s %d\n", sh, counts[sh])
	}
	fmt.Printf("\ntop-%d by cumulative change:\n", *k)
	for _, s := range a.TopTotal(*k) {
		fmt.Printf("  %-20s total=%-8.1f shape=%-7s series=%v\n",
			s.Term.Local(), s.Total(), s.Classify(), s.Values)
	}
	fmt.Printf("\ntop-%d rising:\n", *k)
	for _, s := range a.TopRising(*k) {
		fmt.Printf("  %-20s slope=%-8.2f shape=%-7s series=%v\n",
			s.Term.Local(), s.Slope(), s.Classify(), s.Values)
	}
	return nil
}

// cmdArchive packs version files into an archive directory or unpacks an
// archive back into N-Triples files.
func cmdArchive(args []string) error {
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	policy := fs.String("policy", "delta", "archiving policy: full, delta, or hybrid")
	every := fs.Int("every", 4, "snapshot period for the hybrid policy")
	unpack := fs.Bool("unpack", false, "unpack <dir> into N-Triples files instead of packing")
	out := fs.String("out", "archive", "archive directory (pack) / output directory (unpack)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *unpack {
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: evorec archive -unpack -out <dir> <archiveDir>")
		}
		vs, err := evorec.LoadArchive(fs.Arg(0))
		if err != nil {
			return err
		}
		return writeVersions(vs, *out)
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: evorec archive [-policy p] -out <dir> <v1.nt> [more versions...]")
	}
	var pol evorec.ArchivePolicy
	switch *policy {
	case "full":
		pol = evorec.FullSnapshots
	case "delta":
		pol = evorec.DeltaChain
	case "hybrid":
		pol = evorec.HybridArchive
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	vs := evorec.NewVersionStore()
	for i := 0; i < fs.NArg(); i++ {
		v, err := loadVersion(fs.Arg(i), fmt.Sprintf("v%d", i+1))
		if err != nil {
			return err
		}
		if err := vs.Add(v); err != nil {
			return err
		}
	}
	man, err := evorec.SaveArchive(*out, vs, evorec.ArchiveOptions{Policy: pol, SnapshotEvery: *every})
	if err != nil {
		return err
	}
	size, err := evorec.ArchiveDiskUsage(*out, man)
	if err != nil {
		return err
	}
	fmt.Printf("archived %d versions under %s policy into %s (%d bytes)\n",
		len(man.Entries), pol, *out, size)
	for _, e := range man.Entries {
		fmt.Printf("  %-4s %-9s %s\n", e.ID, e.Kind, e.File)
	}
	return nil
}

func writeVersions(vs *evorec.VersionStore, dir string) error {
	for _, id := range vs.IDs() {
		v, _ := vs.Get(id)
		if err := writeGraphFile(dir, id+".nt", v.Graph); err != nil {
			return err
		}
		fmt.Printf("wrote %s/%s.nt (%d triples)\n", dir, id, v.Graph.Len())
	}
	return nil
}
