// Command evobench regenerates every table and figure of the experiment
// suite (see DESIGN.md §6 and EXPERIMENTS.md). By default it runs the full
// suite at paper scale; -exp selects a single experiment and -scale test
// runs the reduced setup used by the unit tests.
package main

import (
	"flag"
	"fmt"
	"os"

	"evorec/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "single experiment to run (E1..E10, A1, A2); empty runs all")
	scale := flag.String("scale", "full", "experiment scale: full or test")
	seed := flag.Int64("seed", 42, "generation seed")
	users := flag.Int("users", 0, "override user population size (0 keeps the scale default)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var p exp.Params
	switch *scale {
	case "full":
		p = exp.Defaults()
	case "test":
		p = exp.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "evobench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	p.Seed = *seed
	if *users > 0 {
		p.Users = *users
	}

	if *expID != "" {
		e, ok := exp.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "evobench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		out, err := e.Run(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evobench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}
	if err := exp.RunAll(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "evobench:", err)
		os.Exit(1)
	}
}
