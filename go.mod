module evorec

go 1.22
